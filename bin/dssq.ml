(* dssq — command-line front end for the DSS queue reproduction.

     dssq fig5a / fig5b / ablate-*   experiment drivers (same as bench)
     dssq crash-demo                 interactive crash/recovery walkthrough
     dssq lincheck                   randomized strict-linearizability testing
     dssq latency                    modelled per-op latency table
     dssq info                       inventory of what this repo implements *)

module Experiments = Dssq_workload.Experiments
module Report = Dssq_workload.Report
module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Spec = Dssq_spec.Spec
module Dss_spec = Dssq_spec.Dss_spec
module Specs = Dssq_spec.Specs
module Recorder = Dssq_history.Recorder
module Lincheck = Dssq_lincheck.Lincheck
module Trace = Dssq_obs.Trace
module Json = Dssq_obs.Json
open Cmdliner

let render ~title ~x_label ~y_label series =
  Report.print_table ~title ~x_label ~y_label series;
  Report.print_chart series

(* ------------------------------ figures ------------------------------ *)

let threads_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8; 12; 16; 20 ]
    & info [ "threads" ] ~doc:"thread counts")

let repeats_arg = Arg.(value & opt int 3 & info [ "repeats" ] ~doc:"samples")

(* A line size of 0 (or less) would only surface later as an
   [Invalid_argument] from [Line.Alloc.create]; reject it at parse time. *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let line_size_arg =
  Arg.(
    value & opt pos_int 1
    & info [ "line-size" ] ~docv:"WORDS"
        ~doc:
          "persist-line size in words (1, the default, is the legacy \
           word-granular model)")

let coalesce_arg =
  Arg.(
    value & flag
    & info [ "coalesce" ]
        ~doc:
          "route flushes through the per-thread persist buffer: duplicate \
           flushes of a pending line coalesce, and each persistence point \
           drains the buffer with one write-back and one fence")

let combine_arg =
  Arg.(
    value & flag
    & info [ "combine" ]
        ~doc:
          "flat-combining mode: engine-backed objects announce, one \
           combiner applies the whole batch and closes a single persist \
           epoch (flush + drain) for all of it")

let persistency_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("sc", Dssq_pmem.Heap.Persistency.Sc);
             ("px86", Dssq_pmem.Heap.Persistency.Px86);
           ])
        Dssq_pmem.Heap.Persistency.Sc
    & info [ "persistency" ] ~docv:"MODEL"
        ~doc:
          "persistency model: $(b,sc) (default; flushes write back \
           eagerly, persist order = store order) or $(b,px86) (flushes \
           enqueue into per-thread persist buffers; only drain/fence — \
           or, under the explorer, the crash adversary — writes them \
           back)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"write a schema-versioned JSON run report to $(docv)")

let write_report ~experiment ~x_label ~y_label ?(params = []) ?(provenance = [])
    series file =
  let report =
    Dssq_obs.Run_report.make ~backend:"sim" ~experiment ~x_label ~y_label
      ~params ~provenance series
  in
  match Dssq_obs.Run_report.write file report with
  | () ->
      Printf.printf "wrote %s (%s v%d)\n" file Dssq_obs.Run_report.schema_name
        Dssq_obs.Run_report.schema_version
  | exception Sys_error msg ->
      Printf.eprintf "dssq: cannot write report: %s\n" msg;
      exit 1

let fig_params ~threads ~repeats ~line_size ~coalesce =
  [
    ("threads", String.concat "," (List.map string_of_int threads));
    ("repeats", string_of_int repeats);
    ("line_size", string_of_int line_size);
    ("coalesce", string_of_bool coalesce);
  ]

(* Machine-readable run provenance (schema v5): the memory-model knobs
   that decide whether two archived reports are comparable at all.  The
   git revision is stamped by [Run_report.make] itself. *)
let provenance ?threads ~line_size ~coalesce () =
  (match threads with
  | None -> []
  | Some t -> [ ("threads", String.concat "," (List.map string_of_int t)) ])
  @ [
      ("line_size", string_of_int line_size);
      ("coalesce", string_of_bool coalesce);
    ]

let fig5a_cmd =
  let run threads repeats line_size coalesce json =
    match json with
    | None ->
        render ~title:"Figure 5a" ~x_label:"threads" ~y_label:"Mops/s"
          (Experiments.fig5a ~threads ~repeats ~line_size ~coalesce ())
    | Some file ->
        (* Instrumented run: same figure, plus events + latency in JSON. *)
        let series =
          Experiments.fig5a_ex ~threads ~repeats ~line_size ~coalesce
            ~instrument:true ()
        in
        render ~title:"Figure 5a" ~x_label:"threads" ~y_label:"Mops/s"
          (Report.of_run series);
        write_report ~experiment:"fig5a" ~x_label:"threads" ~y_label:"Mops/s"
          ~params:(fig_params ~threads ~repeats ~line_size ~coalesce)
          ~provenance:(provenance ~threads ~line_size ~coalesce ())
          series file
  in
  Cmd.v (Cmd.info "fig5a" ~doc:"regenerate Figure 5a")
    Term.(
      const run $ threads_arg $ repeats_arg $ line_size_arg $ coalesce_arg
      $ json_arg)

let fig5b_cmd =
  let run threads repeats line_size coalesce json =
    match json with
    | None ->
        render ~title:"Figure 5b" ~x_label:"threads" ~y_label:"Mops/s"
          (Experiments.fig5b ~threads ~repeats ~line_size ~coalesce ())
    | Some file ->
        let series =
          Experiments.fig5b_ex ~threads ~repeats ~line_size ~coalesce
            ~instrument:true ()
        in
        render ~title:"Figure 5b" ~x_label:"threads" ~y_label:"Mops/s"
          (Report.of_run series);
        write_report ~experiment:"fig5b" ~x_label:"threads" ~y_label:"Mops/s"
          ~params:(fig_params ~threads ~repeats ~line_size ~coalesce)
          ~provenance:(provenance ~threads ~line_size ~coalesce ())
          series file
  in
  Cmd.v (Cmd.info "fig5b" ~doc:"regenerate Figure 5b")
    Term.(
      const run $ threads_arg $ repeats_arg $ line_size_arg $ coalesce_arg
      $ json_arg)

let ablate_cmd ~name ~doc ~title ~x_label ~y_label f =
  let run line_size json =
    let series = f ~line_size () in
    render ~title ~x_label ~y_label series;
    Option.iter
      (fun file ->
        write_report ~experiment:name ~x_label ~y_label
          ~params:[ ("line_size", string_of_int line_size) ]
          ~provenance:(provenance ~line_size ~coalesce:false ())
          (Report.to_run series) file)
      json
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ line_size_arg $ json_arg)

let ablate_cmds =
  [
    ablate_cmd ~name:"ablate-flush" ~doc:"persist-latency sweep"
      ~title:"Persist-cost ablation" ~x_label:"flush_ns" ~y_label:"Mops/s"
      (fun ~line_size () -> Experiments.ablate_flush ~line_size ());
    ablate_cmd ~name:"ablate-demand" ~doc:"detectability-fraction sweep"
      ~title:"Detectability on demand" ~x_label:"det_pct" ~y_label:"Mops/s"
      (fun ~line_size () -> Experiments.ablate_demand ~line_size ());
    ablate_cmd ~name:"ablate-recovery" ~doc:"recovery-style comparison"
      ~title:"Recovery styles" ~x_label:"queue_len" ~y_label:"memory events"
      (fun ~line_size () -> Experiments.ablate_recovery ~line_size ());
    ablate_cmd ~name:"ablate-pmwcas" ~doc:"PMwCAS width sweep"
      ~title:"PMwCAS width" ~x_label:"width" ~y_label:"ns/op"
      (fun ~line_size () -> Experiments.ablate_pmwcas ~line_size ());
    ablate_cmd ~name:"ablate-crashes" ~doc:"throughput under periodic crashes"
      ~title:"Failure-full throughput" ~x_label:"mtbf_us" ~y_label:"Mops/s"
      (fun ~line_size () -> Experiments.ablate_crash_mtbf ~line_size ());
  ]

(* ------------------------- ablate-linesize --------------------------- *)

(* The persist-line-size sweep has its own command (rather than joining
   [ablate_cmds]) because its payload is richer — every point is
   instrumented, so flushes/op and elided/op per line size are printed
   and archived — and because its size-1 point doubles as the CI
   regression anchor for the whole line refactor. *)
let linesize_run sizes nthreads repeats json anchor =
  let series =
    Experiments.ablate_linesize ~nthreads ~line_sizes:sizes ~repeats ()
  in
  render ~title:"Persist-line size" ~x_label:"line_size" ~y_label:"Mops/s"
    (Report.of_run series);
  let per_op ops n = float_of_int n /. float_of_int (max 1 ops) in
  Printf.printf "%-12s%10s%14s%14s\n" "queue" "line_size" "flushes/op"
    "elided/op";
  List.iter
    (fun (s : Dssq_obs.Run_report.series) ->
      List.iter
        (fun (p : Dssq_obs.Run_report.point) ->
          Printf.printf "%-12s%10d%14.2f%14.2f\n" s.label p.x
            (per_op p.ops p.events.Dssq_memory.Memory_intf.flushes)
            (per_op p.ops p.events.Dssq_memory.Memory_intf.elided_flushes))
        s.points)
    series;
  Option.iter
    (fun file ->
      write_report ~experiment:"ablate-linesize" ~x_label:"line_size"
        ~y_label:"Mops/s"
        ~params:
          [
            ("threads", string_of_int nthreads);
            ("repeats", string_of_int repeats);
            ("line_sizes", String.concat "," (List.map string_of_int sizes));
          ]
        ~provenance:
          [
            ("threads", string_of_int nthreads);
            ("line_size", String.concat "," (List.map string_of_int sizes));
            ("coalesce", "false");
          ]
        series file)
    json;
  (* CI anchor: at line size 1 the harness must be byte-identical to the
     pre-line-abstraction model, so dss-det's flushes/op is a constant of
     the workload.  A drift here means the refactor changed the legacy
     semantics. *)
  Option.iter
    (fun expected ->
      match
        List.find_opt
          (fun (s : Dssq_obs.Run_report.series) -> s.label = "dss-det")
          series
      with
      | None ->
          Printf.eprintf "dssq: anchor check: no dss-det series\n";
          exit 1
      | Some s -> (
          match
            List.find_opt (fun (p : Dssq_obs.Run_report.point) -> p.x = 1)
              s.points
          with
          | None ->
              Printf.eprintf
                "dssq: anchor check: no line-size-1 point (add 1 to --sizes)\n";
              exit 1
          | Some p ->
              let got =
                per_op p.ops p.events.Dssq_memory.Memory_intf.flushes
              in
              if Float.abs (got -. expected) > 0.01 then begin
                Printf.eprintf
                  "dssq: anchor check FAILED: dss-det flushes/op at line size \
                   1 = %.3f, expected %.3f\n"
                  got expected;
                exit 1
              end;
              Printf.printf
                "anchor check passed: dss-det flushes/op at line size 1 = \
                 %.3f (expected %.3f)\n"
                got expected))
    anchor

let ablate_linesize_cmd =
  let sizes =
    Arg.(
      value
      & opt (list pos_int) [ 1; 2; 4; 8; 16 ]
      & info [ "sizes" ] ~doc:"line sizes (words) to sweep")
  in
  let nthreads =
    Arg.(value & opt int 8 & info [ "threads" ] ~doc:"thread count")
  in
  let anchor =
    Arg.(
      value
      & opt (some float) None
      & info [ "check-anchor" ] ~docv:"FLUSHES_PER_OP"
          ~doc:
            "assert that the dss-det series' flushes/op at line size 1 \
             equals $(docv) to within 0.01 (the legacy word-granular \
             regression anchor); exit non-zero on drift")
  in
  Cmd.v
    (Cmd.info "ablate-linesize"
       ~doc:"persist-line-size sweep (instrumented: flushes/op, elided/op)")
    Term.(const linesize_run $ sizes $ nthreads $ repeats_arg $ json_arg $ anchor)

(* ----------------------------- bench-diff ----------------------------- *)

(* Compare two run reports — typically the checked-in BENCH_*.json
   baseline against a fresh `bench regress` run — and exit non-zero when
   throughput regressed.  Points are matched on (series label, x); the
   statistic is the mean of the throughput samples at each point.  Points
   present in only one file are reported but not gated on, so adding or
   retiring a series does not break the pipeline. *)
let bench_diff_run old_file new_file tolerance sp_new sp_ref sp_at sp_min =
  let load file =
    match Dssq_obs.Run_report.read file with
    | r -> r
    | exception Sys_error msg ->
        Printf.eprintf "dssq: cannot read %s: %s\n" file msg;
        exit 2
    | exception Json.Parse_error msg ->
        Printf.eprintf "dssq: %s: %s\n" file msg;
        exit 2
  in
  let old_r = load old_file in
  let new_r = load new_file in
  let mean = function
    | [] -> Float.nan
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  let points (r : Dssq_obs.Run_report.t) =
    List.concat_map
      (fun (s : Dssq_obs.Run_report.series) ->
        List.map
          (fun (p : Dssq_obs.Run_report.point) ->
            ((s.Dssq_obs.Run_report.label, p.Dssq_obs.Run_report.x),
             mean p.Dssq_obs.Run_report.samples))
          s.Dssq_obs.Run_report.points)
      r.Dssq_obs.Run_report.series
  in
  let old_pts = points old_r in
  let new_pts = points new_r in
  Printf.printf "bench-diff: %s (%s) -> %s (%s), tolerance %.1f%%\n\n" old_file
    old_r.Dssq_obs.Run_report.git_rev new_file new_r.Dssq_obs.Run_report.git_rev
    tolerance;
  Printf.printf "%-26s%6s%12s%12s%10s\n" "series" "x" "old" "new" "delta";
  let compared = ref 0 in
  let regressions = ref 0 in
  List.iter
    (fun ((label, x), old_mean) ->
      match List.assoc_opt (label, x) new_pts with
      | None -> ()
      | Some new_mean ->
          incr compared;
          let delta =
            if old_mean > 0. then (new_mean -. old_mean) /. old_mean *. 100.
            else Float.nan
          in
          let regressed =
            new_mean < old_mean *. (1. -. (tolerance /. 100.))
          in
          if regressed then incr regressions;
          Printf.printf "%-26s%6d%12.3f%12.3f%+9.1f%%%s\n" label x old_mean
            new_mean delta
            (if regressed then "  REGRESSION" else ""))
    old_pts;
  let uncompared side pts other =
    let n =
      List.length (List.filter (fun (k, _) -> not (List.mem_assoc k other)) pts)
    in
    if n > 0 then Printf.printf "(%d point(s) only in the %s report)\n" n side
  in
  uncompared "old" old_pts new_pts;
  uncompared "new" new_pts old_pts;
  (* Recovery latency (schema v6): matched on (object, backend),
     lower-is-better, same tolerance.  Sim points are modelled and
     deterministic; points present in only one report — e.g. a pre-v6
     baseline with no recovery list — are not gated on.  A leak in the
     candidate's audit is always a failure, tolerance or not. *)
  let rec_pts (r : Dssq_obs.Run_report.t) =
    List.map
      (fun (p : Dssq_obs.Run_report.recovery_point) ->
        ((p.Dssq_obs.Run_report.r_object, p.r_backend), p))
      r.Dssq_obs.Run_report.recovery
  in
  let old_rec = rec_pts old_r in
  let new_rec = rec_pts new_r in
  if old_rec <> [] && new_rec <> [] then begin
    Printf.printf "\n%-26s%12s%12s%10s\n" "recovery (ms, lower=better)" "old"
      "new" "delta";
    List.iter
      (fun ((obj, backend), (po : Dssq_obs.Run_report.recovery_point)) ->
        match List.assoc_opt (obj, backend) new_rec with
        | None -> ()
        | Some pn ->
            incr compared;
            let delta =
              if po.r_ms > 0. then (pn.r_ms -. po.r_ms) /. po.r_ms *. 100.
              else Float.nan
            in
            let regressed =
              pn.r_ms > po.r_ms *. (1. +. (tolerance /. 100.))
            in
            if regressed then incr regressions;
            Printf.printf "%-26s%12.4f%12.4f%+9.1f%%%s\n"
              (obj ^ "/" ^ backend) po.r_ms pn.r_ms delta
              (if regressed then "  REGRESSION" else ""))
      old_rec
  end;
  List.iter
    (fun ((obj, backend), (p : Dssq_obs.Run_report.recovery_point)) ->
      if p.r_leaked > 0 then begin
        incr regressions;
        Printf.printf "%s/%s: %d node(s) LEAKED after recovery\n" obj backend
          p.r_leaked
      end)
    new_rec;
  (* --speedup-*: an intra-report ratio gate on the CANDIDATE file —
     mean throughput of series --speedup-new over series --speedup-ref
     at x = --speedup-at must reach --speedup-min.  This is how a PR
     whose point is an optimisation gets a positive assertion into the
     pipeline: the tolerance gate above only proves nothing got slower,
     the ratio gate proves the fast path actually is fast (e.g.
     `--speedup-new sim+fc/dss-det --speedup-ref sim/dss-det
     --speedup-at 8 --speedup-min 2.0` for the flat-combining epoch
     batching). *)
  (match (sp_new, sp_ref) with
  | Some new_label, Some ref_label ->
      let find label =
        match List.assoc_opt (label, sp_at) new_pts with
        | Some m -> m
        | None ->
            Printf.eprintf "dssq: bench-diff: no point (%s, x=%d) in %s\n"
              label sp_at new_file;
            exit 2
      in
      let n = find new_label and r = find ref_label in
      let ratio = if r > 0. then n /. r else Float.nan in
      let ok = ratio >= sp_min in
      incr compared;
      if not ok then incr regressions;
      Printf.printf
        "\nspeedup gate: %s / %s at x=%d: %.3f / %.3f = %.2fx (min %.2fx)  %s\n"
        new_label ref_label sp_at n r ratio sp_min
        (if ok then "ok" else "FAILED")
  | None, None -> ()
  | _ ->
      Printf.eprintf
        "dssq: bench-diff: --speedup-new and --speedup-ref must be given \
         together\n";
      exit 2);
  if !compared = 0 then begin
    Printf.eprintf
      "dssq: bench-diff: the reports share no (series, x) points\n";
    exit 2
  end;
  if !regressions > 0 then begin
    Printf.printf "\n%d of %d compared point(s) regressed beyond %.1f%%\n"
      !regressions !compared tolerance;
    exit 1
  end;
  Printf.printf "\nno regression beyond %.1f%% across %d compared point(s)\n"
    tolerance !compared

let bench_diff_cmd =
  let old_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"baseline run report")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"candidate run report")
  in
  let tolerance =
    Arg.(
      value & opt float 10.
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "allowed per-point mean-throughput drop in percent before the \
             diff counts as a regression (default 10)")
  in
  let sp_new =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedup-new" ] ~docv:"LABEL"
          ~doc:
            "series label (in NEW.json) whose throughput must beat \
             $(b,--speedup-ref) by $(b,--speedup-min); requires \
             $(b,--speedup-ref)")
  in
  let sp_ref =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedup-ref" ] ~docv:"LABEL"
          ~doc:"reference series label (in NEW.json) for the speedup gate")
  in
  let sp_at =
    Arg.(
      value & opt int 8
      & info [ "speedup-at" ] ~docv:"X"
          ~doc:"x value (thread count) at which the speedup is measured \
                (default 8)")
  in
  let sp_min =
    Arg.(
      value & opt float 2.0
      & info [ "speedup-min" ] ~docv:"RATIO"
          ~doc:
            "minimum new/ref throughput ratio for the speedup gate; below \
             it the diff exits non-zero (default 2.0)")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "compare two JSON run reports point by point; exit non-zero on a \
          throughput regression beyond --tolerance or a failed \
          --speedup-min gate")
    Term.(
      const bench_diff_run $ old_file $ new_file $ tolerance $ sp_new $ sp_ref
      $ sp_at $ sp_min)

(* -------------------------------- fsck -------------------------------- *)

(* Build a crashed heap in-process — a detectable queue rooted in a
   whole-system recovery handle, a deterministic workload, a simulated
   power loss — and run the strict verifier over it: WAL checksums,
   root-directory shape, full recovery, leak audit.  [--corrupt] plants
   damage in the log first: [bitflip] flips one payload bit of a
   committed interior record (the checksum must catch it), [torn]
   zeroes the checksum word of the final record so the tail looks
   half-written.  Exit is non-zero whenever fsck reports an error —
   the CI negative test asserts exactly that. *)
let fsck_run corrupt json =
  let heap = Heap.create ~line_size:8 () in
  let (module M) = Sim.memory heap in
  let module R = Dssq_workload.Registry.Make (M) in
  let sys = R.Sys.create ~nthreads:1 ~wal_lane_capacity:128 () in
  let ops =
    R.setup ~system:sys ~mk:"dss-queue" ~init_nodes:4
      (Dssq_core.Queue_intf.config ~nthreads:1 ~capacity:64 ())
  in
  for i = 1 to 24 do
    ops.Dssq_core.Queue_intf.d_enqueue ~tid:0 i;
    if i mod 3 = 0 then ignore (ops.Dssq_core.Queue_intf.d_dequeue ~tid:0)
  done;
  Sim.apply_crash heap ~evict_p:0.5 ~seed:11;
  let wal = R.Sys.wal sys in
  (match corrupt with
  | "none" -> ()
  | "bitflip" ->
      (* one bit of a committed record's payload word *)
      R.Sys.Wal.corrupt_word wal ~lane:0 ~slot:2 ~word:1
        ~f:(fun a -> a lxor (1 lsl 13))
  | "torn" ->
      (* the final record's checksum never made it: a torn tail *)
      R.Sys.Wal.corrupt_word wal ~lane:0
        ~slot:(R.Sys.Wal.appended wal - 1)
        ~word:3
        ~f:(fun _ -> 0)
  | other ->
      Printf.eprintf "dssq: fsck: unknown --corrupt %S\n" other;
      exit 2);
  let emit ~ok ~error (rep : Dssq_core.Recovery.report option) =
    match json with
    | "" -> ()
    | file ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc
              (Json.to_string
                 (Json.Obj
                    ([ ("ok", Json.Bool ok) ]
                    @ (match error with
                      | None -> []
                      | Some e -> [ ("error", Json.String e) ])
                    @
                    match rep with
                    | None -> []
                    | Some r ->
                        [
                          ( "replayed",
                            Json.Int r.Dssq_core.Recovery.replayed );
                          ("torn_dropped", Json.Int r.torn_dropped);
                          ("in_flight", Json.Int r.in_flight);
                          ("roots_attached", Json.Int r.roots_attached);
                          ("leaked", Json.Int r.leaked_total);
                        ]))))
  in
  match R.Sys.fsck sys with
  | Ok rep ->
      Format.printf "fsck: clean@.%a@." Dssq_core.Recovery.pp_report rep;
      emit ~ok:true ~error:None (Some rep)
  | Error e ->
      Printf.printf "fsck: FAILED: %s\n" e;
      emit ~ok:false ~error:(Some e) None;
      exit 1

let fsck_cmd =
  let corrupt =
    Arg.(
      value
      & opt string "none"
      & info [ "corrupt" ] ~docv:"MODE"
          ~doc:
            "plant damage in the WAL before checking: $(b,none), \
             $(b,bitflip) (flip one payload bit of a committed record), \
             or $(b,torn) (zero the final record's checksum)")
  in
  let json =
    Arg.(
      value & opt string ""
      & info [ "json" ] ~docv:"FILE"
          ~doc:"also write the verdict (and report numbers) as JSON")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "verify a crashed-then-recovered heap end to end (WAL checksums, \
          root directory, recovery, leak audit); exit non-zero on any \
          corruption")
    Term.(const fsck_run $ corrupt $ json)

(* ------------------------------ metrics ------------------------------ *)

let print_event_table ~ops counters =
  Printf.printf "%-16s%12s%12s\n" "event" "total" "per-op";
  let denom = float_of_int (max 1 ops) in
  List.iter
    (fun (k, v) ->
      Printf.printf "%-16s%12d%12.2f\n" k v (float_of_int v /. denom))
    (Dssq_memory.Memory_intf.Counters.to_assoc counters)

(* Accounting for a non-queue detectable object: the zoo's deterministic
   two-thread workload, plus the words-per-op line the zoo exists for. *)
let metrics_object_run name pairs line_size combine persistency =
  let r =
    Dssq_workload.Zoo.run_one ~pairs ~line_size ~combine ~persistency name
  in
  Printf.printf "object: %s   backend: sim%s%s   ops: %d (all detectable)\n\n"
    name
    (if persistency = Heap.Persistency.Px86 then "+px86" else "")
    (if combine then "+fc" else "")
    r.z_ops;
  print_event_table ~ops:r.z_ops r.z_events;
  Printf.printf "\npersistent_words_per_op: %.2f   flushes_per_op: %.2f\n"
    (Dssq_workload.Zoo.words_per_op r)
    (Dssq_workload.Zoo.flushes_per_op r);
  Printf.printf "\nobject stats:\n";
  List.iter
    (fun (k, v) -> Printf.printf "  %-18s%12d\n" k v)
    (Dssq_core.Detectable_intf.stats_to_assoc r.z_stats)

(* Run a finite deterministic workload on the counted simulator backend
   and print the memory-event accounting for one queue implementation —
   the quickest way to see e.g. flushes per operation. *)
let metrics_queue_run queue pairs det_pct line_size coalesce combine
    persistency =
  let heap = Heap.create ~line_size ~combine ~persistency () in
  let (module M) = Sim.counted_memory ~coalesce heap in
  let module R = Dssq_workload.Registry.Make (M) in
  match R.find_opt queue with
  | None ->
      Printf.eprintf "dssq: unknown queue %S; known queues: %s\n" queue
        (String.concat ", " R.known_names);
      exit 1
  | Some mk ->
      let nthreads = 2 in
      let ops =
        mk
          (Dssq_core.Queue_intf.config ~line_size ~coalesce ~combine ~nthreads
             ~capacity:(16 + 8 + (nthreads * (pairs + 8)))
             ())
      in
      for i = 1 to 16 do
        ops.enqueue ~tid:(i mod nthreads) i
      done;
      (* Seeding may leave buffered flushes under combine; close them
         before the measured window so they don't skew the accounting. *)
      if combine then M.drain ();
      M.reset_counters ();
      let completed = ref 0 in
      let worker tid () =
        for i = 1 to pairs do
          let v = (tid * 1_000_000) + i in
          if Dssq_workload.Sim_throughput.detectable ~det_pct i then begin
            ops.d_enqueue ~tid v;
            incr completed;
            ignore (ops.d_dequeue ~tid);
            incr completed
          end
          else begin
            ops.enqueue ~tid v;
            incr completed;
            ignore (ops.dequeue ~tid);
            incr completed
          end
        done
      in
      ignore (Sim.run heap ~threads:[ worker 0; worker 1 ]);
      let c = M.counters () in
      Printf.printf
        "queue: %s   backend: sim%s%s%s   ops: %d   detectable: %d%%\n\n" queue
        (if coalesce then "+coalesce" else "")
        (if persistency = Heap.Persistency.Px86 then "+px86" else "")
        (if combine then "+fc" else "")
        !completed det_pct;
      print_event_table ~ops:!completed c;
      (match ops.stats () with
      | [] -> ()
      | st ->
          Printf.printf "\nqueue stats:\n";
          List.iter (fun (k, v) -> Printf.printf "  %-18s%12d\n" k v) st);
      match Dssq_obs.Metrics.snapshot () with
      | [] -> ()
      | ms ->
          Printf.printf "\nprocess metrics:\n";
          List.iter (fun (k, v) -> Printf.printf "  %-24s%12d\n" k v) ms

(* [--object] dispatches across queue-registry names and the zoo; an
   unknown name is an error listing every known name — it must never
   fall back to the queue silently. *)
let metrics_run queue object_name pairs det_pct line_size coalesce combine
    persistency =
  let queue_names =
    let heap = Heap.create ~line_size:1 () in
    let (module M) = Sim.counted_memory heap in
    let module R = Dssq_workload.Registry.Make (M) in
    R.known_names
  in
  match object_name with
  | None ->
      metrics_queue_run queue pairs det_pct line_size coalesce combine
        persistency
  | Some name when List.mem name queue_names ->
      metrics_queue_run name pairs det_pct line_size coalesce combine
        persistency
  | Some name when List.mem name Dssq_workload.Zoo.objects ->
      metrics_object_run name pairs line_size combine persistency
  | Some name ->
      let known =
        queue_names
        @ List.filter
            (fun o -> not (List.mem o queue_names))
            Dssq_workload.Zoo.objects
      in
      Printf.eprintf "dssq: unknown object %S; known objects: %s\n" name
        (String.concat ", " known);
      exit 1

let metrics_cmd =
  let queue =
    Arg.(
      value & opt string "dss-queue"
      & info [ "queue" ] ~doc:"queue implementation to account (see dssq info)")
  in
  let object_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "object" ] ~docv:"NAME"
          ~doc:
            "detectable object to account (any queue-registry or zoo name); \
             overrides $(b,--queue)")
  in
  let pairs =
    Arg.(
      value & opt int 200
      & info [ "pairs" ] ~doc:"operation pairs per thread")
  in
  let det =
    Arg.(
      value & opt int 100
      & info [ "det" ] ~doc:"percent of detectable operations (queues only)")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"memory-event accounting for one detectable object on the simulator")
    Term.(
      const metrics_run $ queue $ object_name $ pairs $ det $ line_size_arg
      $ coalesce_arg $ combine_arg $ persistency_arg)

(* -------------------------------- zoo --------------------------------- *)

let zoo_run pairs line_size combine json =
  let rows = Dssq_workload.Zoo.run_all ~pairs ~line_size () in
  Printf.printf
    "detectable-object zoo: %d ops/object (2 threads), sim backend, \
     line size %d\n\n"
    (2 * 2 * pairs) line_size;
  Printf.printf "%-14s%8s%10s%12s%12s%14s%16s\n" "object" "ops" "pwrites"
    "words/op" "flushes/op" "state_words" "announce_words";
  List.iter
    (fun (r : Dssq_workload.Zoo.row) ->
      Printf.printf "%-14s%8d%10d%12.2f%12.2f%14d%16d\n" r.z_object r.z_ops
        r.z_events.Dssq_memory.Memory_intf.pwrites
        (Dssq_workload.Zoo.words_per_op r)
        (Dssq_workload.Zoo.flushes_per_op r)
        r.z_stats.Dssq_core.Detectable_intf.state_words
        r.z_stats.Dssq_core.Detectable_intf.announce_words)
    rows;
  Printf.printf
    "\nlower bound (Ben-Baruch et al., PAPERS.md): one persistent announce \
     word\nper process, and >= 2 persisted words per detectable mutation \
     (announce +\nstate); see EXPERIMENTS.md for the comparison table.\n";
  if combine then begin
    Printf.printf
      "\nflat-combining amortization (dss-fc engine queue, 8 threads): \
       words/op is\nfloor-bound — folding does not skip announce turnover — \
       while flushes/op\namortizes toward O(1/batch), one persist epoch per \
       batch:\n\n";
    Printf.printf "%8s%8s%12s%12s%12s\n" "batch" "ops" "words/op" "flushes/op"
      "fences/op";
    List.iter
      (fun (f : Dssq_workload.Zoo.fc_row) ->
        Printf.printf "%8d%8d%12.2f%12.3f%12.3f\n" f.f_batch f.f_ops f.f_words
          f.f_flushes f.f_fences)
      (Dssq_workload.Zoo.combine_rows ())
  end;
  match json with
  | None -> ()
  | Some file ->
      let report = Dssq_workload.Zoo.to_report ~pairs ~line_size rows in
      (match Dssq_obs.Run_report.write file report with
      | () ->
          Printf.printf "wrote %s (%s v%d)\n" file
            Dssq_obs.Run_report.schema_name Dssq_obs.Run_report.schema_version
      | exception Sys_error msg ->
          Printf.eprintf "dssq: cannot write report: %s\n" msg;
          exit 1)

let zoo_cmd =
  let pairs =
    Arg.(
      value & opt int 200
      & info [ "pairs" ] ~doc:"operation pairs per thread per object")
  in
  let combine =
    Arg.(
      value & flag
      & info [ "combine" ]
          ~doc:
            "append the flat-combining amortization sweep: words/op and \
             flushes/op per batch size on the engine queue, against the \
             Ben-Baruch floor")
  in
  Cmd.v
    (Cmd.info "zoo"
       ~doc:
         "persistent_words_per_op accounting across every detectable object \
          (the space-complexity table; --json for the archivable report)")
    Term.(const zoo_run $ pairs $ line_size_arg $ combine $ json_arg)

(* ------------------------------ profile ------------------------------ *)

module Zoo = Dssq_workload.Zoo
module Heatmap = Dssq_obs.Heatmap
module Profile = Dssq_obs.Profile
module Prom = Dssq_obs.Prom
module MI = Dssq_memory.Memory_intf

(* Attribution-grade profiling of the detectable-object zoo: the
   per-line persistence heatmap (which persist lines absorb the writes,
   flushes, elisions and coalesces, labeled by allocation site) and the
   phase-attributed profiler (the same events plus span latency, scoped
   by announce / exec / resolve / recovery phase).  The cross-check
   printed under each table — per-phase events summing exactly to the
   backend counter deltas — is the invariant the whole attribution rests
   on; the test suite asserts it across every object. *)
let profile_run object_ backend pairs line_size coalesce combine persistency
    crash with_heatmap top json prom =
  let fail fmt =
    Printf.ksprintf (fun m -> Printf.eprintf "dssq: %s\n" m; exit 2) fmt
  in
  let names =
    match object_ with
    | "all" -> Zoo.objects
    | o when List.mem o Zoo.objects -> [ o ]
    | o when List.mem ("dss-" ^ o) Zoo.objects -> [ "dss-" ^ o ]
    | o ->
        fail "unknown object %S (all, %s)" o (String.concat ", " Zoo.objects)
  in
  let backend_name = match backend with `Sim -> "sim" | `Native -> "native" in
  if crash && backend = `Native then
    fail "--crash is simulator-only (the native backend cannot lose its cache)";
  let profiles =
    List.map
      (fun name ->
        let p =
          match backend with
          | `Sim ->
              Zoo.profile_one ~pairs ~line_size ~coalesce ~combine ~persistency
                ~crash name
          | `Native ->
              Zoo.profile_one_native ~pairs ~line_size ~coalesce ~combine
                ~persistency name
        in
        (name, p))
      names
  in
  List.iter
    (fun (name, (p : Zoo.profile)) ->
      let r = p.Zoo.p_row in
      let c = r.Zoo.z_events in
      Printf.printf "== %s  backend: %s%s%s%s  ops: %d  line size: %d%s ==\n"
        name backend_name
        (if coalesce then "+coalesce" else "")
        (if persistency = Heap.Persistency.Px86 then "+px86" else "")
        (if combine then "+fc" else "")
        r.Zoo.z_ops line_size
        (if crash then "  (with crash + recovery)" else "");
      Format.printf "%a@?" Profile.pp_rows p.Zoo.p_phases;
      let sum f =
        List.fold_left
          (fun acc (ph : Profile.phase_row) -> acc + f ph)
          0 p.Zoo.p_phases
      in
      let checks =
        [
          ("pwrites", sum (fun ph -> ph.Profile.ph_pwrites), c.MI.pwrites);
          ("flushes", sum (fun ph -> ph.Profile.ph_flushes), c.MI.flushes);
          ("elided", sum (fun ph -> ph.Profile.ph_elides), c.MI.elided_flushes);
          ( "coalesced",
            sum (fun ph -> ph.Profile.ph_coalesces),
            c.MI.coalesced_flushes );
          ("fences", sum (fun ph -> ph.Profile.ph_fences), c.MI.fences);
        ]
      in
      Printf.printf "attribution check (phase sums / backend totals): %s\n"
        (String.concat "  "
           (List.map (fun (k, a, b) -> Printf.sprintf "%s %d/%d" k a b) checks));
      (* The invariant the attribution rests on: a sum mismatch means
         some persist event escaped its phase, so fail loudly — CI
         treats a non-zero exit as a lost-attribution regression. *)
      List.iter
        (fun (k, a, b) ->
          if a <> b then
            fail "%s: attribution lost %s events (phase sum %d, backend total %d)"
              name k a b)
        checks;
      if with_heatmap then begin
        Printf.printf "\npersistence heatmap (top %d of %d lines):\n" top
          (List.length p.Zoo.p_heat);
        Format.printf "%a@?" Heatmap.pp_rows (Heatmap.top ~n:top p.Zoo.p_heat)
      end;
      print_newline ())
    profiles;
  Option.iter
    (fun file ->
      let doc =
        Json.Obj
          [
            ("schema", Json.String "dssq-profile-report");
            ("version", Json.Int 1);
            ("git_rev", Json.String (Dssq_obs.Run_report.git_rev ()));
            ("backend", Json.String backend_name);
            ( "params",
              Json.Obj
                [
                  ("pairs", Json.Int pairs);
                  ("crash", Json.Bool crash);
                  ("combine", Json.Bool combine);
                  ( "persistency",
                    Json.String (Heap.Persistency.to_string persistency) );
                ] );
            ( "provenance",
              Json.Obj
                (List.map
                   (fun (k, v) -> (k, Json.String v))
                   (* The zoo's workload is fixed at two threads. *)
                   (provenance ~threads:[ 2 ] ~line_size ~coalesce ())) );
            ( "objects",
              Json.List
                (List.map
                   (fun (name, (p : Zoo.profile)) ->
                     Json.Obj
                       [
                         ("object", Json.String name);
                         ("ops", Json.Int p.Zoo.p_row.Zoo.z_ops);
                         ( "counters",
                           Json.Obj
                             (List.map
                                (fun (k, v) -> (k, Json.Int v))
                                (MI.Counters.to_assoc p.Zoo.p_row.Zoo.z_events))
                         );
                         ("phases", Profile.rows_to_json p.Zoo.p_phases);
                         ("heatmap", Heatmap.rows_to_json p.Zoo.p_heat);
                       ])
                   profiles) );
          ]
      in
      match
        let oc = open_out file in
        output_string oc (Json.to_string doc);
        output_char oc '\n';
        close_out oc
      with
      | () -> Printf.printf "wrote %s (dssq-profile-report v1)\n" file
      | exception Sys_error msg ->
          Printf.eprintf "dssq: cannot write profile report: %s\n" msg;
          exit 1)
    json;
  Option.iter
    (fun file ->
      (* One flat exposition file; the [workload] label keeps objects
         apart so names stay unique per label set. *)
      let samples =
        List.concat_map
          (fun (name, (p : Zoo.profile)) ->
            List.map
              (fun (s : Prom.sample) ->
                { s with Prom.s_labels = ("workload", name) :: s.Prom.s_labels })
              (Prom.phase_samples p.Zoo.p_phases
              @ Prom.heatmap_samples p.Zoo.p_heat))
          profiles
      in
      match Prom.write file samples with
      | () ->
          Printf.printf "wrote %s (Prometheus text format, %d samples)\n" file
            (List.length samples)
      | exception Sys_error msg ->
          Printf.eprintf "dssq: cannot write Prometheus file: %s\n" msg;
          exit 1)
    prom

let profile_cmd =
  let object_ =
    Arg.(
      value & opt string "all"
      & info [ "object" ] ~docv:"NAME"
          ~doc:
            "zoo object to profile (the dss- prefix may be omitted), or all")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
      & info [ "backend" ] ~doc:"memory backend: sim (default) or native")
  in
  let pairs =
    Arg.(
      value & opt int 200
      & info [ "pairs" ] ~doc:"operation pairs per thread")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "inject a seeded crash after the workload and run recovery plus \
             per-thread resolve, so the recovery phases appear in the \
             attribution (simulator only)")
  in
  let with_heatmap =
    Arg.(
      value & flag
      & info [ "heatmap" ]
          ~doc:"also print the per-line persistence heatmap (see --top)")
  in
  let top =
    Arg.(
      value & opt pos_int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"heatmap rows to print, ranked by effective flushes")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "write the heatmap and phase tables as Prometheus text-format \
             samples to $(docv)")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "attribution-grade profiling: per-line persistence heatmap and \
          phase-attributed persist-event/latency tables for the detectable \
          zoo (--json / --prom for the archivable artifacts)")
    Term.(
      const profile_run $ object_ $ backend $ pairs $ line_size_arg
      $ coalesce_arg $ combine_arg $ persistency_arg $ crash $ with_heatmap
      $ top $ json_arg $ prom)

let latency_cmd =
  let run () =
    Printf.printf "%-16s%14s%14s%9s\n" "queue" "plain_ns" "detectable_ns" "ratio";
    List.iter
      (fun (name, nondet, det) ->
        Printf.printf "%-16s%14.0f%14.0f%9.2f\n" name nondet det
          (if nondet > 0. then det /. nondet else 0.))
      (Experiments.op_latency ())
  in
  Cmd.v (Cmd.info "latency" ~doc:"modelled per-op latency") Term.(const run $ const ())

(* ---------------------------- crash demo ----------------------------- *)

let crash_demo step evict_p show_trace =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let q = Q.create ~nthreads:2 ~capacity:64 () in
  List.iter (fun v -> Q.enqueue q ~tid:1 v) [ 1; 2; 3 ];
  Printf.printf "queue initialized with [1; 2; 3]\n";
  Printf.printf
    "thread 0 runs: prep-enqueue(42); exec-enqueue; prep-dequeue; exec-dequeue\n";
  let thread () =
    Q.prep_enqueue q ~tid:0 42;
    Q.exec_enqueue q ~tid:0;
    Q.prep_dequeue q ~tid:0;
    ignore (Q.exec_dequeue q ~tid:0)
  in
  let trace =
    if show_trace then
      Some
        (fun ~step ~tid desc -> Printf.printf "  [%3d] t%d: %s\n" step tid desc)
    else None
  in
  let outcome =
    Sim.run heap ~crash:(Sim.Crash_at_step step) ?trace ~threads:[ thread ]
  in
  if not outcome.Sim.crashed then
    Printf.printf
      "no crash before the program finished (it takes fewer than %d steps);\n\
       final queue: [%s]\n"
      step
      (String.concat "; " (List.map string_of_int (Q.to_list q)))
  else begin
    Printf.printf "CRASH injected before memory event #%d (evict_p = %.2f)\n"
      step evict_p;
    Sim.apply_crash heap ~evict_p ~seed:step;
    Q.recover q;
    Printf.printf "recovery complete; queue now: [%s]\n"
      (String.concat "; " (List.map string_of_int (Q.to_list q)));
    let r = Q.resolve q ~tid:0 in
    Printf.printf "resolve for thread 0: %s\n"
      (Format.asprintf "%a" Dssq_core.Queue_intf.pp_resolved r);
    match r with
    | Dssq_core.Queue_intf.Enq_pending v ->
        Printf.printf "-> retrying the enqueue of %d exactly once\n" v;
        Q.exec_enqueue q ~tid:0;
        Printf.printf "queue after retry: [%s]\n"
          (String.concat "; " (List.map string_of_int (Q.to_list q)))
    | Dssq_core.Queue_intf.Deq_pending ->
        Printf.printf "-> retrying the dequeue exactly once\n";
        Printf.printf "dequeued: %d\n" (Q.exec_dequeue q ~tid:0)
    | _ -> Printf.printf "-> nothing to redo\n"
  end

let crash_demo_cmd =
  let step =
    Arg.(value & opt int 25 & info [ "step" ] ~doc:"memory event to crash before")
  in
  let evict =
    Arg.(value & opt float 0.5 & info [ "evict" ] ~doc:"cache eviction probability")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"print every memory event")
  in
  Cmd.v
    (Cmd.info "crash-demo" ~doc:"crash a detectable program and resolve it")
    Term.(const crash_demo $ step $ evict $ trace)

(* ------------------------------- trace ------------------------------- *)

(* Run a crash-injecting workload on the simulator under the event tracer
   and export the merged event trace as Chrome trace-event JSON: every
   memory event with its cell and post-event dirtiness, the crash with
   per-cell evict verdicts, the recovery phase, and each thread's resolve
   outcome.  The file loads directly into https://ui.perfetto.dev or
   chrome://tracing. *)
let trace_run out step evict_p seed capacity timeline =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let q = Q.create ~nthreads:2 ~capacity:64 () in
  List.iter (fun v -> Q.enqueue q ~tid:0 v) [ 1; 2; 3 ];
  let tracer = Trace.start ~capacity () in
  (* Persist barrier between setup and the traced run (and the trace's
     guaranteed fence event). *)
  Heap.fence heap;
  let enqueuer () =
    Q.prep_enqueue q ~tid:0 42;
    Q.exec_enqueue q ~tid:0
  in
  let dequeuer () =
    Q.prep_dequeue q ~tid:1;
    ignore (Q.exec_dequeue q ~tid:1)
  in
  let outcome =
    Sim.run heap ~policy:(Sim.Random_seed seed)
      ~crash:(Sim.Crash_at_step step)
      ~threads:[ enqueuer; dequeuer ]
  in
  if not outcome.Sim.crashed then
    Printf.printf
      "note: the program finished before step %d; crashing at quiescence\n"
      step;
  Sim.apply_crash heap ~evict_p ~seed;
  Q.recover q;
  let r0 = Q.resolve q ~tid:0 in
  let r1 = Q.resolve q ~tid:1 in
  Trace.stop ();
  let entries = Trace.entries tracer in
  (match Trace.write_chrome out entries with
  | () -> ()
  | exception Sys_error msg ->
      Printf.eprintf "dssq: cannot write trace: %s\n" msg;
      exit 1);
  (* Validate what we just wrote: it must parse back as JSON and hold a
     non-empty traceEvents array (this is also the CI smoke check). *)
  let parsed = Json.of_string (In_channel.with_open_text out In_channel.input_all) in
  let exported = List.length (Json.to_list (Json.path [ "traceEvents" ] parsed)) in
  let count p = List.length (List.filter (fun (e : Trace.entry) -> p e.Trace.event) entries) in
  let ops =
    count (function Trace.Op_begin _ | Trace.Op_end _ -> true | _ -> false)
  in
  let mem_of k =
    count (function Trace.Mem { op; _ } -> op = k | _ -> false)
  in
  let kinds =
    [
      ("op", ops);
      ("read", mem_of `Read);
      ("write", mem_of `Write);
      ("cas", mem_of `Cas);
      ("flush", mem_of `Flush);
      ("fence", mem_of `Fence);
      ("crash", count (function Trace.Crash _ -> true | _ -> false));
      ( "recovery",
        count (function
          | Trace.Recovery_begin | Trace.Recovery_end -> true
          | _ -> false) );
      ("resolve", count (function Trace.Resolve _ -> true | _ -> false));
    ]
  in
  Printf.printf "wrote %s: %d trace events (%d recorded, %d dropped)\nkinds: %s\n"
    out exported (Trace.recorded tracer) (Trace.dropped tracer)
    (String.concat " " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) kinds));
  if Trace.dropped tracer > 0 then
    Printf.eprintf
      "dssq: warning: ring buffers overflowed and evicted %d event(s) (%s); \
       the exported window is truncated — rerun with a larger --capacity\n"
      (Trace.dropped tracer)
      (String.concat ", "
         (List.map
            (fun (tid, n) ->
              Printf.sprintf "%s: %d"
                (if tid < 0 then "system" else Printf.sprintf "t%d" tid)
                n)
            (Trace.dropped_by_thread tracer)));
  (* The smoke-check contract: an exported trace must exercise every
     event kind, or the run (and CI) fails. *)
  let missing = List.filter (fun (_, n) -> n = 0) kinds in
  if exported = 0 || missing <> [] then begin
    Printf.eprintf "dssq: trace is incomplete (missing: %s)\n"
      (if exported = 0 then "everything"
       else String.concat ", " (List.map fst missing));
    exit 1
  end;
  Printf.printf "resolve: t0 -> %s, t1 -> %s\n"
    (Format.asprintf "%a" Dssq_core.Queue_intf.pp_resolved r0)
    (Format.asprintf "%a" Dssq_core.Queue_intf.pp_resolved r1);
  Printf.printf "open the file in https://ui.perfetto.dev (or chrome://tracing)\n";
  if timeline then Format.printf "@.%a" Trace.pp_timeline entries

let trace_cmd =
  let out =
    Arg.(
      value & opt string "dssq-trace.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"output file (chrome trace-event JSON)")
  in
  let step =
    Arg.(value & opt int 30 & info [ "step" ] ~doc:"memory event to crash before")
  in
  let evict =
    Arg.(
      value & opt float 0.5 & info [ "evict" ] ~doc:"cache eviction probability")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"schedule seed") in
  let capacity =
    Arg.(
      value & opt int 4096
      & info [ "capacity" ] ~doc:"per-thread ring-buffer capacity")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ] ~doc:"also print the merged human-readable timeline")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "trace a crash/recovery workload and export a Perfetto-loadable \
          timeline")
    Term.(const trace_run $ out $ step $ evict $ seed $ capacity $ timeline)

(* ----------------------------- lincheck ------------------------------ *)

(* A detectable queue as closures, for implementation-generic fuzzing. *)
type qh = {
  heap : Heap.t;
  prep_enqueue : tid:int -> int -> unit;
  exec_enqueue : tid:int -> unit;
  prep_dequeue : tid:int -> unit;
  exec_dequeue : tid:int -> int;
  dequeue : tid:int -> int;
  resolve : tid:int -> Dssq_core.Queue_intf.resolved;
  recover : unit -> unit;
}

let make_queue ?(coalesce = false) ?(combine = false) ?persistency kind : qh =
  let heap = Heap.create ~combine ?persistency () in
  let (module M) = Sim.memory ~coalesce heap in
  match kind with
  | `Dss ->
      let module Q = Dssq_core.Dss_queue.Make (M) in
      let q = Q.create ~nthreads:2 ~capacity:64 ~combine () in
      {
        heap;
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
      }
  | `Log ->
      let module Q = Dssq_baselines.Log_queue.Make (M) in
      let q = Q.create ~nthreads:2 ~capacity:64 in
      {
        heap;
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
      }
  | `Fast ->
      let module Q = Dssq_baselines.Caswe_queue.Fast (M) in
      let q = Q.create ~nthreads:2 ~capacity:64 () in
      {
        heap;
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
      }
  | `General ->
      let module Q = Dssq_baselines.Caswe_queue.General (M) in
      let q = Q.create ~nthreads:2 ~capacity:64 () in
      {
        heap;
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
      }

(* Randomized strict-linearizability testing: random schedules, random
   crash points, recovery, recorded resolves, checked against D<queue>.
   Every execution runs under an event tracer, so a violation is reported
   with the exact interleaving of stores, flushes, crash and resolves
   that produced it — as a timeline, and optionally as Perfetto JSON. *)
let lincheck_run kind coalesce combine persistency iterations verbose
    trace_json =
  if combine && kind <> `Dss then begin
    Printf.eprintf "dssq: --combine only applies to the dss queue\n";
    exit 2
  end;
  let spec = Dss_spec.make ~nthreads:2 (Specs.Queue.spec ()) in
  let checked = ref 0 in
  let crashes = ref 0 in
  for i = 1 to iterations do
    ignore (Trace.start () : Trace.t);
    let q = make_queue ~coalesce ~combine ~persistency kind in
    let heap = q.heap in
    let rec_ = Recorder.create () in
    let record ~tid op f =
      ignore (Recorder.record rec_ ~tid op f)
    in
    let deq_response v : (Specs.Queue.op, Specs.Queue.response) Dss_spec.response
        =
      if v = Dssq_core.Queue_intf.empty_value then Dss_spec.Ret Specs.Queue.Empty
      else Dss_spec.Ret (Specs.Queue.Value v)
    in
    let resolved_response (r : Dssq_core.Queue_intf.resolved) :
        (Specs.Queue.op, Specs.Queue.response) Dss_spec.response =
      match r with
      | Nothing -> Dss_spec.Status (None, None)
      | Enq_pending v -> Dss_spec.Status (Some (Specs.Queue.Enqueue v), None)
      | Enq_done v ->
          Dss_spec.Status (Some (Specs.Queue.Enqueue v), Some Specs.Queue.Ok)
      | Deq_pending -> Dss_spec.Status (Some Specs.Queue.Dequeue, None)
      | Deq_empty ->
          Dss_spec.Status (Some Specs.Queue.Dequeue, Some Specs.Queue.Empty)
      | Deq_done v ->
          Dss_spec.Status
            (Some Specs.Queue.Dequeue, Some (Specs.Queue.Value v))
    in
    let enqueuer () =
      record ~tid:0 (Dss_spec.Prep (Specs.Queue.Enqueue i)) (fun () ->
          q.prep_enqueue ~tid:0 i;
          Dss_spec.Ack);
      record ~tid:0 (Dss_spec.Exec (Specs.Queue.Enqueue i)) (fun () ->
          q.exec_enqueue ~tid:0;
          Dss_spec.Ret Specs.Queue.Ok)
    in
    let dequeuer () =
      record ~tid:1 (Dss_spec.Prep Specs.Queue.Dequeue) (fun () ->
          q.prep_dequeue ~tid:1;
          Dss_spec.Ack);
      record ~tid:1 (Dss_spec.Exec Specs.Queue.Dequeue) (fun () ->
          deq_response (q.exec_dequeue ~tid:1))
    in
    let outcome =
      Sim.run heap ~policy:(Sim.Random_seed i)
        ~crash:(Sim.Crash_at_step (5 + (i mod 45)))
        ~threads:[ enqueuer; dequeuer ]
    in
    if outcome.Sim.crashed then begin
      incr crashes;
      Recorder.crash rec_;
      Sim.apply_crash heap ~evict_p:(float_of_int (i mod 3) /. 2.) ~seed:i;
      q.recover ();
      record ~tid:0 Dss_spec.Resolve (fun () ->
          resolved_response (q.resolve ~tid:0));
      record ~tid:1 Dss_spec.Resolve (fun () ->
          resolved_response (q.resolve ~tid:1))
    end;
    (* Drain so the final state is validated too. *)
    let rec drain guard =
      if guard > 0 then begin
        let v = ref 0 in
        record ~tid:0 (Dss_spec.Base Specs.Queue.Dequeue) (fun () ->
            v := q.dequeue ~tid:0;
            deq_response !v);
        if !v <> Dssq_core.Queue_intf.empty_value then drain (guard - 1)
      end
    in
    drain 10;
    let history = Recorder.history rec_ in
    (match Lincheck.check ~mode:Lincheck.Strict spec history with
    | Lincheck.Linearizable w ->
        if verbose then begin
          Printf.printf "iteration %d: linearizable (%d ops)\n" i (List.length w)
        end
    | Lincheck.Not_linearizable trace ->
        Printf.printf "iteration %d: VIOLATION\n" i;
        Format.printf "%a"
          (Dssq_history.History.pp ~pp_op:spec.Spec.pp_op
             ~pp_response:spec.Spec.pp_response)
          history;
        if trace <> [] then
          Format.printf "recorded event timeline:@.%a" Trace.pp_timeline trace;
        Option.iter
          (fun file ->
            Trace.write_chrome file trace;
            Printf.printf "wrote %s (chrome trace-event JSON, %d events)\n" file
              (List.length trace))
          trace_json;
        exit 1);
    Trace.stop ();
    incr checked
  done;
  Printf.printf
    "checked %d random executions (%d with crashes): all strictly linearizable \
     w.r.t. D<queue>\n"
    !checked !crashes

let lincheck_cmd =
  let kind =
    Arg.(
      value
      & opt
          (enum
             [ ("dss", `Dss); ("log", `Log); ("fast-caswe", `Fast); ("general-caswe", `General) ])
          `Dss
      & info [ "queue" ] ~doc:"implementation to check")
  in
  let iterations =
    Arg.(value & opt int 500 & info [ "n" ] ~doc:"number of random executions")
  in
  let verbose = Arg.(value & flag & info [ "v" ] ~doc:"verbose") in
  let trace_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-json" ] ~docv:"FILE"
          ~doc:
            "on a violation, also dump the failing execution's event trace \
             as Chrome trace-event JSON to $(docv) (Perfetto-loadable)")
  in
  Cmd.v
    (Cmd.info "lincheck"
       ~doc:
         "randomized strict-linearizability checking of a detectable queue")
    Term.(
      const lincheck_run $ kind $ coalesce_arg $ combine_arg $ persistency_arg
      $ iterations $ verbose $ trace_json)

(* ------------------------------ explore ------------------------------ *)

module Explore = Dssq_sim.Explore
module Scenarios = Dssq_checker.Scenarios
module Mutants = Dssq_checker.Mutants
module Oracle = Dssq_checker.Oracle
module Explore_report = Dssq_checker.Explore_report

(* Re-exported so the explore driver below can build and match the
   record with unqualified fields; the schema (encode + decode) lives in
   {!Dssq_checker.Explore_report}. *)
type explore_result = Explore_report.case_result = {
  xcase : Scenarios.case;
  verdict : (Explore.stats, Explore.schedule * exn) result;
  naive : (Explore.stats, Explore.schedule * exn) result option;
}

let run_case = Explore_report.run_case

let explore_run object_ crash_mode line_sizes coalesce combine persistency
    mutant mode_name max_preemptions max_crash_lines crash_samples seed
    adversary limit compare_naive json token_file replay case_name list_only =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "dssq: %s\n" m; exit 2) fmt in
  let mode =
    match Oracle.mode_of_name mode_name with
    | Some m -> m
    | None -> fail "unknown mode %S (strict, recoverable, durable)" mode_name
  in
  let mutation =
    match mutant with
    | None -> None
    | Some n -> (
        match Mutants.by_name n with
        | Some m -> Some m
        | None ->
            fail "unknown mutant %S; known: %s" n
              (String.concat ", "
                 (List.map fst Mutants.all
                 @ [ "drop-drain" ]
                 @ List.map fst Mutants.relaxed)))
  in
  let objects =
    match object_ with
    | "all" -> Scenarios.objects
    | o when List.mem o Scenarios.objects -> [ o ]
    | o ->
        fail "unknown object %S (all, %s)" o (String.concat ", " Scenarios.objects)
  in
  let crash_modes =
    match crash_mode with
    | `Both -> [ false; true ]
    | `On -> [ true ]
    | `Off -> [ false ]
  in
  let cases =
    Scenarios.cases ~objects ~crash_modes ~line_sizes ~coalesce ~combine
      ~persistency ?mutation ~mode ~max_preemptions ~max_crash_lines
      ~crash_samples ~seed ~adversary ~limit ()
  in
  if list_only then begin
    List.iter (fun (c : Scenarios.case) -> print_endline c.Scenarios.name) cases;
    exit 0
  end;
  match replay with
  | Some token ->
      let name =
        match case_name with
        | Some n -> n
        | None -> fail "--replay requires --case NAME (see --list)"
      in
      let c =
        match Scenarios.find_case ~cases name with
        | Some c -> c
        | None -> fail "unknown case %S (see --list)" name
      in
      let sched =
        match Explore.schedule_of_string token with
        | s -> s
        | exception Invalid_argument m -> fail "bad replay token: %s" m
      in
      let outcome, trace = c.Scenarios.explain sched in
      Printf.printf "replaying %s under token %s\n" c.Scenarios.name token;
      if trace <> [] then
        Format.printf "event timeline:@.%a" Trace.pp_timeline trace;
      (match outcome with
      | Explore.Passed `Completed ->
          print_endline "execution completed; check passed"
      | Explore.Passed `Crashed ->
          print_endline "execution crashed and recovered; check passed"
      | Explore.Failed exn ->
          Printf.printf "check FAILED:\n%s\n" (Printexc.to_string exn);
          exit 1)
  | None ->
      let results =
        List.map
          (fun (c : Scenarios.case) ->
            let verdict = run_case c ~reduction:true in
            let naive =
              if compare_naive then Some (run_case c ~reduction:false)
              else None
            in
            let show = function
              | Ok (s : Explore.stats) ->
                  let hit_denom = s.pruned + s.branches in
                  let hit =
                    if hit_denom = 0 then 0.
                    else 100. *. float_of_int s.pruned /. float_of_int hit_denom
                  in
                  Printf.sprintf
                    "%7d execs %6d pruned (%4.1f%% hit) %7d crash %s %6.2fs"
                    s.executions s.pruned hit s.crash_branches
                    (if s.crash_sampled > 0 then
                       Printf.sprintf "[%d/%d pts sampled]" s.crash_sampled
                         s.crash_points
                     else Printf.sprintf "[%d pts enum]" s.crash_points)
                    s.wall_s
              | Error (sched, _) ->
                  Printf.sprintf "FAIL %s" (Explore.schedule_to_string sched)
            in
            Printf.printf "%-34s %s%s\n%!" c.Scenarios.name (show verdict)
              (match naive with
              | None -> ""
              | Some n -> Printf.sprintf "   [naive: %s]" (show n));
            { xcase = c; verdict; naive })
          cases
      in
      let failures =
        List.filter_map
          (fun r ->
            match r.verdict with
            | Error (sched, exn) -> Some (r.xcase, sched, exn)
            | Ok _ -> None)
          results
      in
      let mismatches =
        List.filter
          (fun r ->
            match (r.verdict, r.naive) with
            | _, None -> false
            | Ok rs, Some (Ok ns) -> rs.Explore.executions > ns.Explore.executions
            | Ok _, Some (Error _) | Error _, Some (Ok _) -> true
            | Error _, Some (Error _) -> false)
          results
      in
      let params =
        [
          ("object", Json.String object_);
          ( "crashes",
            Json.String
              (match crash_mode with
              | `Both -> "both"
              | `On -> "on"
              | `Off -> "off") );
          ( "line_sizes",
            Json.List (List.map (fun n -> Json.Int n) line_sizes) );
          ("coalesce", Json.Bool coalesce);
          ("combine", Json.Bool combine);
          ( "persistency",
            Json.String (Dssq_pmem.Heap.Persistency.to_string persistency) );
          ( "mutant",
            match mutant with None -> Json.Null | Some m -> Json.String m );
          ("mode", Json.String mode_name);
          ("max_preemptions", Json.Int max_preemptions);
          ("max_crash_lines", Json.Int max_crash_lines);
          ("crash_samples", Json.Int crash_samples);
          ("seed", Json.Int seed);
          ( "adversary",
            Json.String
              (match adversary with
              | `Per_line -> "per-line"
              | `All_or_nothing -> "all-or-nothing") );
          ("compare_naive", Json.Bool compare_naive);
        ]
      in
      Option.iter
        (fun file ->
          let doc = Explore_report.encode ~params results in
          let oc = open_out file in
          output_string oc (Json.to_string doc);
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %s (%s v%d)\n" file Explore_report.schema
            Explore_report.version)
        json;
      (match failures with
      | [] -> ()
      | fs ->
          let oc = open_out token_file in
          List.iter
            (fun ((c : Scenarios.case), sched, _) ->
              Printf.fprintf oc "%s %s\n" c.Scenarios.name
                (Explore.schedule_to_string sched))
            fs;
          close_out oc;
          Printf.printf "\n%d failing case(s); replay tokens written to %s\n"
            (List.length fs) token_file;
          (* Replay the first failure under a tracer so the report carries
             the merged event timeline alongside the token. *)
          let c, sched, exn = List.hd fs in
          Printf.printf
            "first failure: %s\n  token: %s\n  %s\n  replay with: dssq explore \
             --case %s --replay %s\n"
            c.Scenarios.name
            (Explore.schedule_to_string sched)
            (Printexc.to_string exn) c.Scenarios.name
            (Explore.schedule_to_string sched);
          let _, trace = c.Scenarios.explain sched in
          if trace <> [] then
            Format.printf "event timeline:@.%a" Trace.pp_timeline trace);
      List.iter
        (fun r ->
          match (r.verdict, r.naive) with
          | Ok rs, Some (Ok ns) when rs.Explore.executions > ns.Explore.executions
            ->
              Printf.printf
                "MISMATCH %s: reduced search ran more executions (%d) than \
                 naive (%d)\n"
                r.xcase.Scenarios.name rs.Explore.executions
                ns.Explore.executions
          | Ok _, Some (Error (sched, _)) ->
              Printf.printf
                "MISMATCH %s: naive search found a violation (%s) the reduced \
                 search missed\n"
                r.xcase.Scenarios.name
                (Explore.schedule_to_string sched)
          | Error (sched, _), Some (Ok _) ->
              Printf.printf
                "note %s: only the reduced search reports a violation (%s); \
                 the naive run is cut short at the first failure, so this is \
                 expected only under differing orders\n"
                r.xcase.Scenarios.name
                (Explore.schedule_to_string sched)
          | _ -> ())
        results;
      if failures <> [] || mismatches <> [] then exit 1;
      let tot f =
        List.fold_left
          (fun acc r -> match r.verdict with Ok s -> acc + f s | Error _ -> acc)
          0 results
      in
      let wall =
        List.fold_left
          (fun acc r ->
            match r.verdict with
            | Ok s -> acc +. s.Explore.wall_s
            | Error _ -> acc)
          0. results
      in
      Printf.printf
        "explored %d case(s): all executions %s-linearizable w.r.t. their \
         specifications\n\
         coverage: %d executions, %d branches, %d pruned, %d crash points \
         (%d enumerated, %d sampled), %.2fs\n"
        (List.length results) mode_name
        (tot (fun s -> s.Explore.executions))
        (tot (fun s -> s.Explore.branches))
        (tot (fun s -> s.Explore.pruned))
        (tot (fun s -> s.Explore.crash_points))
        (tot (fun s -> s.Explore.crash_enumerated))
        (tot (fun s -> s.Explore.crash_sampled))
        wall;
      if persistency = Dssq_pmem.Heap.Persistency.Px86 then
        Printf.printf
          "px86 coverage: %d drain points, %d crash executions with adversary \
           drains\n"
          (tot (fun s -> s.Explore.drain_points))
          (tot (fun s -> s.Explore.drain_branches))

let explore_cmd =
  let object_ =
    Arg.(
      value & opt string "all"
      & info [ "object" ] ~docv:"OBJ"
          ~doc:"object to check: all, queue, stack, register or hashmap")
  in
  let crashes =
    Arg.(
      value
      & opt (enum [ ("both", `Both); ("on", `On); ("off", `Off) ]) `Both
      & info [ "crashes" ]
          ~doc:"crash-injection mode: both (default), on, or off")
  in
  let line_sizes =
    Arg.(
      value
      & opt (list pos_int) [ 1; 8 ]
      & info [ "line-sizes" ] ~docv:"WORDS"
          ~doc:"persist-line sizes to cover (default 1,8)")
  in
  let mutant =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            "inject a seeded bug (skip-flush-link, skip-flush-mark, \
             stale-announce, unfenced, drop-drain, skip-drain, short-drain, \
             reorder-persist, lost-batch); restricts the corpus to the queue \
             (drop-drain is only observable with --coalesce; skip-drain, \
             short-drain and reorder-persist only with --persistency px86; \
             lost-batch only with --combine, where it targets the \
             engine-backed objects)")
  in
  let mode =
    Arg.(
      value & opt string "strict"
      & info [ "mode" ] ~doc:"linearizability mode: strict, recoverable, durable")
  in
  let max_preemptions =
    Arg.(
      value & opt int 1
      & info [ "max-preemptions" ]
          ~doc:"CHESS preemption bound (iterative deepening)")
  in
  let max_crash_lines =
    Arg.(
      value & opt pos_int 4
      & info [ "max-crash-lines" ]
          ~doc:
            "cap on exhaustive eviction-subset enumeration per crash point; \
             above it, seeded sampling")
  in
  let crash_samples =
    Arg.(
      value & opt int 6
      & info [ "crash-samples" ]
          ~doc:"sampled eviction subsets past the enumeration cap")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"crash-sampling seed")
  in
  let adversary =
    Arg.(
      value
      & opt
          (enum
             [ ("per-line", `Per_line); ("all-or-nothing", `All_or_nothing) ])
          `Per_line
      & info [ "adversary" ]
          ~doc:"crash adversary: per-line (default) or the legacy all-or-nothing")
  in
  let limit =
    Arg.(
      value & opt int 2_000_000
      & info [ "limit" ] ~doc:"abort past this many executions")
  in
  let compare_naive =
    Arg.(
      value & flag
      & info [ "compare-naive" ]
          ~doc:
            "also run the unreduced search per case and check the reduced \
             search explored no more executions and missed no violation")
  in
  let token_file =
    Arg.(
      value
      & opt string "explore-counterexample.txt"
      & info [ "token-file" ] ~docv:"FILE"
          ~doc:"where to write replay tokens of failing cases")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"TOKEN"
          ~doc:
            "replay one recorded schedule token (from a violation report) \
             against --case and print its outcome and event timeline")
  in
  let case =
    Arg.(
      value
      & opt (some string) None
      & info [ "case" ] ~docv:"NAME" ~doc:"corpus case to replay (see --list)")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"list corpus case names and exit")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "bounded-exhaustive crash-consistency model checking of the DSS \
          objects (sleep-set reduction, per-line crash adversary, lincheck \
          oracle, replayable counterexamples)")
    Term.(
      const explore_run $ object_ $ crashes $ line_sizes $ coalesce_arg
      $ combine_arg $ persistency_arg $ mutant $ mode $ max_preemptions
      $ max_crash_lines $ crash_samples $ seed $ adversary $ limit
      $ compare_naive $ json_arg $ token_file $ replay $ case $ list_only)

(* ------------------------------- info -------------------------------- *)

let info_cmd =
  let run () =
    print_string
      "dssq: OCaml reproduction of Li & Golab, 'Detectable Sequential\n\
       Specifications for Recoverable Shared Objects' (DISC 2021; brief\n\
       announcement at PODC 2021).\n\n\
       Libraries:\n\
      \  dssq.spec      the DSS transformation D<T> (Section 2, Figure 1)\n\
      \  dssq.core      the DSS queue + recovery (Section 3, Figures 3-4, 6);\n\
      \                 D<register>, D<CAS> cells, nesting, D<stack>, D<hashmap>\n\
      \  dssq.baselines MS queue, durable queue, log queue, CASWithEffect queues\n\
      \  dssq.pmwcas    persistent multi-word CAS (Wang et al.)\n\
      \  dssq.pmem/sim  persistent-memory + crash simulator (volatile cache model)\n\
      \  dssq.lincheck  strict/recoverable linearizability checker\n\
      \  dssq.universal recoverable universal construction of D<T>\n\
      \  dssq.ebr       epoch-based reclamation\n\
      \  dssq.obs       histograms, metrics, JSON run reports (--json)\n\n\
       Experiments: fig5a, fig5b, ablate-flush, ablate-demand,\n\
       ablate-recovery, ablate-pmwcas, ablate-linesize, latency, metrics,\n\
       zoo (persistent_words_per_op across the detectable-object zoo),\n\
       profile (persistence heatmap + phase-attributed profiler),\n\
       lincheck, crash-demo, trace, explore.  See DESIGN.md and\n\
       EXPERIMENTS.md.\n"
  in
  Cmd.v (Cmd.info "info" ~doc:"what this repository implements") Term.(const run $ const ())

let () =
  let default =
    Term.(
      ret
        (const (fun () -> `Help (`Pager, None)) $ const ()))
  in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "dssq" ~doc:"DSS queue reproduction toolkit")
          ([
             fig5a_cmd;
             fig5b_cmd;
             ablate_linesize_cmd;
             bench_diff_cmd;
             fsck_cmd;
             metrics_cmd;
             zoo_cmd;
             profile_cmd;
             latency_cmd;
             crash_demo_cmd;
             trace_cmd;
             lincheck_cmd;
             explore_cmd;
             info_cmd;
           ]
          @ ablate_cmds)))
