(** Tests for the packed single-word detectable register
    ([Dss_register]): sequential semantics, the helping protocol that
    preserves detection evidence across overwrites, crash sweeps, and
    strict linearizability against [D<register>]. *)

open Helpers
module Reg = Specs.Register

type dr = {
  heap : Heap.t;
  read : tid:int -> int;
  write : tid:int -> int -> unit;
  prep_write : tid:int -> int -> unit;
  exec_write : tid:int -> unit;
  prep_read : tid:int -> unit;
  exec_read : tid:int -> int;
  resolve : tid:int -> string;
  resolve_raw : tid:int -> resolved_reg;
}

and resolved_reg =
  | RNothing
  | RWrite_pending of int
  | RWrite_done of int
  | RRead_pending
  | RRead_done of int

let make ?(init = 0) ~nthreads () : dr =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module R = Dssq_core.Dss_register.Make (M) in
  let r = R.create ~init ~nthreads () in
  let raw ~tid =
    match R.resolve r ~tid with
    | R.Nothing -> RNothing
    | R.Write_pending v -> RWrite_pending v
    | R.Write_done v -> RWrite_done v
    | R.Read_pending -> RRead_pending
    | R.Read_done v -> RRead_done v
  in
  {
    heap;
    read = (fun ~tid -> R.read r ~tid);
    write = (fun ~tid v -> R.write r ~tid v);
    prep_write = (fun ~tid v -> R.prep_write r ~tid v);
    exec_write = (fun ~tid -> R.exec_write r ~tid);
    prep_read = (fun ~tid -> R.prep_read r ~tid);
    exec_read = (fun ~tid -> R.exec_read r ~tid);
    resolve = (fun ~tid -> Format.asprintf "%a" R.pp_resolved (R.resolve r ~tid));
    resolve_raw = raw;
  }

let resolved_reg : resolved_reg Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | RNothing -> Format.pp_print_string fmt "nothing"
      | RWrite_pending v -> Format.fprintf fmt "write %d pending" v
      | RWrite_done v -> Format.fprintf fmt "write %d done" v
      | RRead_pending -> Format.pp_print_string fmt "read pending"
      | RRead_done v -> Format.fprintf fmt "read done %d" v)
    ( = )

let test_plain_read_write () =
  let r = make ~nthreads:2 () in
  Alcotest.(check int) "initial" 0 (r.read ~tid:0);
  r.write ~tid:0 7;
  Alcotest.(check int) "after write" 7 (r.read ~tid:1);
  r.write ~tid:1 9;
  Alcotest.(check int) "overwrite" 9 (r.read ~tid:0)

let test_detectable_write_lifecycle () =
  let r = make ~nthreads:2 () in
  Alcotest.check resolved_reg "initially nothing" RNothing (r.resolve_raw ~tid:0);
  r.prep_write ~tid:0 5;
  Alcotest.check resolved_reg "prepared" (RWrite_pending 5) (r.resolve_raw ~tid:0);
  r.exec_write ~tid:0;
  Alcotest.check resolved_reg "done" (RWrite_done 5) (r.resolve_raw ~tid:0);
  Alcotest.(check int) "value visible" 5 (r.read ~tid:1)

let test_detectable_read_lifecycle () =
  let r = make ~init:3 ~nthreads:1 () in
  r.prep_read ~tid:0;
  Alcotest.check resolved_reg "prepared" RRead_pending (r.resolve_raw ~tid:0);
  Alcotest.(check int) "read value" 3 (r.exec_read ~tid:0);
  Alcotest.check resolved_reg "done" (RRead_done 3) (r.resolve_raw ~tid:0)

let test_overwrite_preserves_detection () =
  (* The helping protocol: even after other threads overwrite the
     register (destroying the provenance), the first writer's completion
     must already be persisted in its own X. *)
  let r = make ~nthreads:3 () in
  r.prep_write ~tid:0 5;
  r.exec_write ~tid:0;
  r.write ~tid:1 8;
  r.prep_write ~tid:2 9;
  r.exec_write ~tid:2;
  Alcotest.check resolved_reg "t0 still resolves done" (RWrite_done 5)
    (r.resolve_raw ~tid:0);
  Alcotest.check resolved_reg "t2 resolves done" (RWrite_done 9)
    (r.resolve_raw ~tid:2)

let test_repeated_same_value_disambiguated () =
  (* Writing the same value twice: the sequence number keeps resolve
     anchored to the LAST prepared instance. *)
  let r = make ~nthreads:1 () in
  r.prep_write ~tid:0 5;
  r.exec_write ~tid:0;
  r.prep_write ~tid:0 5;
  Alcotest.check resolved_reg "second instance pending" (RWrite_pending 5)
    (r.resolve_raw ~tid:0);
  r.exec_write ~tid:0;
  Alcotest.check resolved_reg "second instance done" (RWrite_done 5)
    (r.resolve_raw ~tid:0)

(* ------------------------- crash sweeps --------------------------- *)

let test_crash_sweep_write () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let r = make ~nthreads:2 () in
        let t () =
          r.prep_write ~tid:0 5;
          r.exec_write ~tid:0
        in
        let outcome =
          Sim.run r.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then begin
          Alcotest.check resolved_reg "complete run resolves done"
            (RWrite_done 5) (r.resolve_raw ~tid:0);
          finished := true
        end
        else begin
          Sim.apply_crash r.heap ~evict_p ~seed:!step;
          (* No recovery procedure exists or is needed. *)
          (match r.resolve_raw ~tid:0 with
          | RWrite_done 5 ->
              Alcotest.(check int)
                (Printf.sprintf "done => value present (step %d)" !step)
                5 (r.read ~tid:1)
          | RWrite_pending 5 ->
              Alcotest.(check int)
                (Printf.sprintf "pending => value absent (step %d)" !step)
                0 (r.read ~tid:1);
              (* exactly-once retry *)
              r.exec_write ~tid:0;
              Alcotest.(check int) "retry lands" 5 (r.read ~tid:1)
          | RNothing -> Alcotest.(check int) "prep lost" 0 (r.read ~tid:1)
          | _ ->
              Alcotest.failf "unexpected resolution at step %d: %s" !step
                (r.resolve ~tid:0));
          (* Resolution must be stable across further resolves. *)
          Alcotest.check resolved_reg "resolve idempotent"
            (r.resolve_raw ~tid:0) (r.resolve_raw ~tid:0)
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_crash_then_overwrite_detection_survives () =
  (* Crash mid-write; whatever resolve says first must not change after
     other threads overwrite the register. *)
  for step = 0 to 20 do
    let r = make ~nthreads:2 () in
    let t () =
      r.prep_write ~tid:0 5;
      r.exec_write ~tid:0
    in
    let outcome = Sim.run r.heap ~crash:(Sim.Crash_at_step step) ~threads:[ t ] in
    if outcome.Sim.crashed then begin
      Sim.apply_crash r.heap ~evict_p:0.5 ~seed:step;
      let first = r.resolve_raw ~tid:0 in
      r.write ~tid:1 77;
      r.prep_write ~tid:1 78;
      r.exec_write ~tid:1;
      Alcotest.check resolved_reg
        (Printf.sprintf "detection stable under overwrite (step %d)" step)
        first (r.resolve_raw ~tid:0)
    end
  done

(* --------------------- concurrent linearizability ------------------ *)

let dreg ~nthreads = Dss_spec.make ~nthreads (Reg.spec ())

let test_concurrent_lincheck () =
  let spec = dreg ~nthreads:3 in
  for seed = 1 to 30 do
    let r = make ~nthreads:3 () in
    let rec_ = Recorder.create () in
    let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
    let writer v ~tid () =
      record ~tid (Dss_spec.Prep (Reg.Write v)) (fun () ->
          r.prep_write ~tid v;
          Dss_spec.Ack);
      record ~tid (Dss_spec.Exec (Reg.Write v)) (fun () ->
          r.exec_write ~tid;
          Dss_spec.Ret Reg.Ok)
    in
    let reader ~tid () =
      record ~tid (Dss_spec.Base Reg.Read) (fun () ->
          Dss_spec.Ret (Reg.Value (r.read ~tid)));
      record ~tid (Dss_spec.Base Reg.Read) (fun () ->
          Dss_spec.Ret (Reg.Value (r.read ~tid)))
    in
    let outcome =
      Sim.run r.heap ~policy:(Sim.Random_seed seed)
        ~threads:[ writer 10 ~tid:0; writer 20 ~tid:1; reader ~tid:2 ]
    in
    Sim.check_thread_errors outcome;
    match Lincheck.check ~mode:Lincheck.Strict spec (Recorder.history rec_) with
    | Lincheck.Linearizable _ -> ()
    | Lincheck.Not_linearizable _ ->
        Alcotest.failf "seed %d: not linearizable" seed
  done

let test_concurrent_crash_lincheck () =
  let spec = dreg ~nthreads:2 in
  for seed = 1 to 20 do
    for crash_step = 1 to 25 do
      let r = make ~nthreads:2 () in
      let rec_ = Recorder.create () in
      let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
      let writer v ~tid () =
        record ~tid (Dss_spec.Prep (Reg.Write v)) (fun () ->
            r.prep_write ~tid v;
            Dss_spec.Ack);
        record ~tid (Dss_spec.Exec (Reg.Write v)) (fun () ->
            r.exec_write ~tid;
            Dss_spec.Ret Reg.Ok)
      in
      let outcome =
        Sim.run r.heap ~policy:(Sim.Random_seed seed)
          ~crash:(Sim.Crash_at_step crash_step)
          ~threads:[ writer 10 ~tid:0; writer 20 ~tid:1 ]
      in
      if outcome.Sim.crashed then begin
        Recorder.crash rec_;
        Sim.apply_crash r.heap ~evict_p:(float_of_int (seed mod 3) /. 2.) ~seed;
        let resolved_resp ~tid =
          match r.resolve_raw ~tid with
          | RNothing -> Dss_spec.Status (None, None)
          | RWrite_pending v -> Dss_spec.Status (Some (Reg.Write v), None)
          | RWrite_done v -> Dss_spec.Status (Some (Reg.Write v), Some Reg.Ok)
          | RRead_pending -> Dss_spec.Status (Some Reg.Read, None)
          | RRead_done v ->
              Dss_spec.Status (Some Reg.Read, Some (Reg.Value v))
        in
        record ~tid:0 Dss_spec.Resolve (fun () -> resolved_resp ~tid:0);
        record ~tid:1 Dss_spec.Resolve (fun () -> resolved_resp ~tid:1)
      end;
      (* Final read validates the state. *)
      record ~tid:0 (Dss_spec.Base Reg.Read) (fun () ->
          Dss_spec.Ret (Reg.Value (r.read ~tid:0)));
      match Lincheck.check ~mode:Lincheck.Strict spec (Recorder.history rec_) with
      | Lincheck.Linearizable _ -> ()
      | Lincheck.Not_linearizable _ ->
          Alcotest.failf "seed %d, crash %d: not linearizable" seed crash_step
    done
  done

let suite =
  [
    Alcotest.test_case "plain read/write" `Quick test_plain_read_write;
    Alcotest.test_case "detectable write lifecycle" `Quick
      test_detectable_write_lifecycle;
    Alcotest.test_case "detectable read lifecycle" `Quick
      test_detectable_read_lifecycle;
    Alcotest.test_case "overwrite preserves detection (helping)" `Quick
      test_overwrite_preserves_detection;
    Alcotest.test_case "repeated value disambiguated by seq" `Quick
      test_repeated_same_value_disambiguated;
    Alcotest.test_case "crash sweep: write" `Quick test_crash_sweep_write;
    Alcotest.test_case "crash then overwrite: detection survives" `Quick
      test_crash_then_overwrite_detection_survives;
    Alcotest.test_case "concurrent writers strictly linearizable" `Quick
      test_concurrent_lincheck;
    Alcotest.test_case "concurrent crashes strictly linearizable" `Quick
      test_concurrent_crash_lincheck;
  ]
