(** Attribution-grade profiling: the persistence heatmap's aggregation
    invariants (QCheck), the Prometheus exporter's escaping round-trip,
    and the end-to-end accounting identities the `dssq profile` tables
    rest on — per-phase and per-line event sums equal to the backend
    counter deltas across the whole zoo, and event streams bit-identical
    with profiling on or off. *)

module Heatmap = Dssq_obs.Heatmap
module Profile = Dssq_obs.Profile
module Prom = Dssq_obs.Prom
module Zoo = Dssq_workload.Zoo
module MI = Dssq_memory.Memory_intf

(* --------------------------- heatmap invariants ----------------------- *)

(* Index-coded events so QCheck can print counterexamples. *)
let line_events =
  [| `Pwrite; `Flush; `Elide; `Coalesce; `Evict; `Drop |]

let prop_heatmap_sums =
  QCheck.Test.make ~count:200
    ~name:"heatmap: per-line sums equal the event totals"
    QCheck.(
      list_of_size (Gen.int_range 0 200)
        (pair (int_range 0 8) (int_range 0 (Array.length line_events - 1))))
    (fun evs ->
      Heatmap.reset ();
      Heatmap.start ();
      List.iter
        (fun (line, i) -> Heatmap.record line_events.(i) ~line)
        evs;
      Heatmap.stop ();
      let rows = Heatmap.rows () in
      let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
      let count i = List.length (List.filter (fun (_, j) -> j = i) evs) in
      sum (fun r -> r.Heatmap.h_writes) = count 0
      && sum (fun r -> r.Heatmap.h_flushes) = count 1
      && sum (fun r -> r.Heatmap.h_elides) = count 2
      && sum (fun r -> r.Heatmap.h_coalesces) = count 3
      && sum (fun r -> r.Heatmap.h_evicts) = count 4
      && sum (fun r -> r.Heatmap.h_drops) = count 5)

let test_heatmap_labels () =
  Heatmap.reset ();
  Heatmap.start ();
  Heatmap.note ~line:3 ~name:"";
  Heatmap.note ~line:3 ~name:"queue.head";
  Heatmap.note ~line:3 ~name:"later-loser";
  Heatmap.record `Pwrite ~line:3;
  (* fences carry no line and negative lines have no identity: both are
     ignored rather than aggregated *)
  Heatmap.record `Fence ~line:3;
  Heatmap.record `Flush ~line:(-1);
  Heatmap.stop ();
  (match Heatmap.rows () with
  | [ r ] ->
      Alcotest.(check string)
        "first non-empty name wins" "queue.head" r.Heatmap.h_label;
      Alcotest.(check string) "bucketed by owner" "queue" r.Heatmap.h_object;
      Alcotest.(check int) "one write" 1 r.Heatmap.h_writes;
      Alcotest.(check int) "fence not aggregated" 0 r.Heatmap.h_flushes
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
  Alcotest.(check string) "bucket strips index" "ann" (Heatmap.bucket "ann[0]");
  Alcotest.(check string) "bucket of empty label" "?" (Heatmap.bucket "");
  (* reset_counts keeps the allocation-site labels (the
     post-construction measurement-window reset) *)
  Heatmap.start ();
  Heatmap.reset_counts ();
  Heatmap.record `Flush ~line:3;
  Heatmap.stop ();
  match List.filter (fun r -> r.Heatmap.h_line = 3) (Heatmap.rows ()) with
  | [ r ] ->
      Alcotest.(check string) "label survives" "queue.head" r.Heatmap.h_label;
      Alcotest.(check int) "counts were zeroed" 0 r.Heatmap.h_writes;
      Alcotest.(check int) "new window counts" 1 r.Heatmap.h_flushes;
      Heatmap.reset ()
  | rows -> Alcotest.failf "expected line 3, got %d rows" (List.length rows)

let test_heatmap_off_is_noop () =
  Heatmap.reset ();
  Heatmap.record `Pwrite ~line:1;
  Heatmap.note ~line:1 ~name:"ghost";
  Alcotest.(check int) "nothing aggregated while off" 0
    (List.length (Heatmap.rows ()))

let test_heatmap_top_ranking () =
  let mk line flushes writes =
    {
      Heatmap.h_line = line;
      h_label = "";
      h_object = "?";
      h_writes = writes;
      h_flushes = flushes;
      h_elides = 0;
      h_coalesces = 0;
      h_evicts = 0;
      h_drops = 0;
    }
  in
  let rows = [ mk 1 2 9; mk 2 5 0; mk 3 2 1; mk 4 0 50 ] in
  Alcotest.(check (list int))
    "flushes desc, writes break ties" [ 2; 1; 3 ]
    (List.map
       (fun r -> r.Heatmap.h_line)
       (Heatmap.top ~n:3 rows))

(* ------------------------ Prometheus exporter ------------------------- *)

let prop_prom_escape_roundtrip =
  QCheck.Test.make ~count:500 ~name:"prom: label escaping round-trips"
    QCheck.string (fun s -> Prom.unescape_label (Prom.escape_label s) = s)

let test_prom_rendering () =
  Alcotest.(check string)
    "dotted names flatten" "dssq_heap_flushes"
    (Prom.sanitize_name "dssq.heap.flushes");
  Alcotest.(check string)
    "sample line" "flushes{site=\"q.head \\\"hot\\\"\"} 128"
    (Prom.sample_to_string
       {
         Prom.s_name = "flushes";
         s_labels = [ ("site", "q.head \"hot\"") ];
         s_value = 128.;
       });
  Alcotest.(check string)
    "integers render without exponent" "1234567890"
    (Prom.sample_to_string
       { Prom.s_name = "x"; s_labels = []; s_value = 1234567890. }
       |> String.split_on_char ' ' |> List.tl |> List.hd);
  (* unknown escapes keep their backslash, per Prometheus parsers *)
  Alcotest.(check string) "unknown escape kept" "\\q" (Prom.unescape_label "\\q")

(* -------------------- end-to-end accounting identities ----------------- *)

let counters_of (p : Zoo.profile) = p.Zoo.p_row.Zoo.z_events

let phase_sum f (p : Zoo.profile) =
  List.fold_left
    (fun acc (ph : Profile.phase_row) -> acc + f ph)
    0 p.Zoo.p_phases

let heat_sum f (p : Zoo.profile) =
  List.fold_left (fun acc r -> acc + f r) 0 p.Zoo.p_heat

(* The identity the whole attribution rests on: for every zoo object,
   per-phase event counts and per-line heatmap counts each sum exactly
   to the backend's counter deltas — nothing double-counted, nothing
   unattributed. *)
let check_attribution_sums ~ctx (p : Zoo.profile) =
  let c = counters_of p in
  let chk what a b =
    Alcotest.(check int) (Printf.sprintf "%s: %s" ctx what) b a
  in
  chk "phase pwrites" (phase_sum (fun r -> r.Profile.ph_pwrites) p) c.MI.pwrites;
  chk "phase flushes" (phase_sum (fun r -> r.Profile.ph_flushes) p) c.MI.flushes;
  chk "phase elided"
    (phase_sum (fun r -> r.Profile.ph_elides) p)
    c.MI.elided_flushes;
  chk "phase coalesced"
    (phase_sum (fun r -> r.Profile.ph_coalesces) p)
    c.MI.coalesced_flushes;
  chk "phase fences" (phase_sum (fun r -> r.Profile.ph_fences) p) c.MI.fences;
  chk "phase elided fences"
    (phase_sum (fun r -> r.Profile.ph_elided_fences) p)
    c.MI.elided_fences;
  chk "heatmap writes" (heat_sum (fun r -> r.Heatmap.h_writes) p) c.MI.pwrites;
  chk "heatmap flushes" (heat_sum (fun r -> r.Heatmap.h_flushes) p) c.MI.flushes;
  chk "heatmap elided"
    (heat_sum (fun r -> r.Heatmap.h_elides) p)
    c.MI.elided_flushes;
  chk "heatmap coalesced"
    (heat_sum (fun r -> r.Heatmap.h_coalesces) p)
    c.MI.coalesced_flushes

let test_zoo_attribution_sums () =
  List.iter
    (fun name ->
      check_attribution_sums ~ctx:name (Zoo.profile_one ~pairs:40 name))
    Zoo.objects

let test_zoo_attribution_sums_crash () =
  List.iter
    (fun name ->
      let p = Zoo.profile_one ~pairs:40 ~crash:true name in
      check_attribution_sums ~ctx:(name ^ "+crash") p;
      (* the crash arm must put work into the recovery phases *)
      let recovery_spans =
        List.fold_left
          (fun acc (r : Profile.phase_row) ->
            if r.Profile.ph_phase = "recovery-scan" then acc + r.Profile.ph_ops
            else acc)
          0 p.Zoo.p_phases
      in
      Alcotest.(check bool)
        (name ^ ": recovery-scan spans recorded")
        true (recovery_spans > 0))
    Zoo.objects

let test_zoo_attribution_sums_coalesce () =
  List.iter
    (fun name ->
      check_attribution_sums ~ctx:(name ^ "+co")
        (Zoo.profile_one ~pairs:40 ~line_size:8 ~coalesce:true name))
    Zoo.objects

let test_native_attribution_sums () =
  List.iter
    (fun name ->
      check_attribution_sums ~ctx:(name ^ "@native")
        (Zoo.profile_one_native ~pairs:40 name))
    Zoo.objects;
  check_attribution_sums ~ctx:"dss-queue@native+co"
    (Zoo.profile_one_native ~pairs:40 ~coalesce:true "dss-queue")

(* Profiling must not perturb what it measures: with the aggregators
   detached, the same deterministic workload produces bit-identical
   counter deltas (this is the profiling-off anchor guarantee — the
   fig5a flushes/op constant cannot move when profiling is off). *)
let test_profiling_transparent () =
  List.iter
    (fun name ->
      let plain = Zoo.run_one ~pairs:40 name in
      let profiled = Zoo.profile_one ~pairs:40 name in
      Alcotest.(check bool)
        (name ^ ": counters identical with profiling on")
        true
        (plain.Zoo.z_events = profiled.Zoo.p_row.Zoo.z_events);
      Alcotest.(check int)
        (name ^ ": same ops")
        plain.Zoo.z_ops profiled.Zoo.p_row.Zoo.z_ops)
    Zoo.objects;
  (* and the aggregators are really off again afterwards *)
  Alcotest.(check bool) "heatmap off" false (Heatmap.is_on ());
  Alcotest.(check bool) "profiler off" false (Profile.is_on ())

let test_profile_heat_labeled () =
  (* Attribution is only useful if the hot lines carry names: the
     queue's heatmap must label its announce and head lines. *)
  let p = Zoo.profile_one ~pairs:40 "dss-queue" in
  let labels =
    List.filter_map
      (fun r -> if r.Heatmap.h_label = "" then None else Some r.Heatmap.h_label)
      p.Zoo.p_heat
  in
  Alcotest.(check bool) "some lines are labeled" true (labels <> []);
  Alcotest.(check bool)
    "head is labeled" true
    (List.exists (fun l -> l = "head") labels)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_heatmap_sums; prop_prom_escape_roundtrip ]
  @ [
      Alcotest.test_case "heatmap labels and buckets" `Quick
        test_heatmap_labels;
      Alcotest.test_case "heatmap off is a no-op" `Quick
        test_heatmap_off_is_noop;
      Alcotest.test_case "heatmap top ranking" `Quick test_heatmap_top_ranking;
      Alcotest.test_case "prometheus rendering" `Quick test_prom_rendering;
      Alcotest.test_case "zoo: per-phase/per-line sums = backend totals"
        `Quick test_zoo_attribution_sums;
      Alcotest.test_case "zoo: sums hold across crash + recovery" `Quick
        test_zoo_attribution_sums_crash;
      Alcotest.test_case "zoo: sums hold under coalescing" `Quick
        test_zoo_attribution_sums_coalesce;
      Alcotest.test_case "zoo: sums hold on the native backend" `Quick
        test_native_attribution_sums;
      Alcotest.test_case "profiling is transparent" `Quick
        test_profiling_transparent;
      Alcotest.test_case "heatmap lines carry allocation-site labels" `Quick
        test_profile_heat_labeled;
    ]
