(** Property-based tests (qcheck, registered as alcotest cases): the DSS
    queue against the D<queue> reference model, the DSS transformation's
    algebraic laws, the universal construction against the specification
    it is built from, crash/recovery round-trips with random programs,
    and tagged-word encoding. *)

open Helpers
module Q = Specs.Queue

(* ------------------------- generators --------------------------------- *)

(* A queue operation for a random program. *)
type gen_op = Enq of int | Deq | DetEnq of int | DetDeq

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun v -> Enq v) (int_range 0 99));
        (3, return Deq);
        (2, map (fun v -> DetEnq v) (int_range 100 199));
        (2, return DetDeq);
      ])

let arb_program = QCheck.make ~print:(fun ops ->
    String.concat ";"
      (List.map
         (function
           | Enq v -> Printf.sprintf "enq %d" v
           | Deq -> "deq"
           | DetEnq v -> Printf.sprintf "det-enq %d" v
           | DetDeq -> "det-deq")
         ops))
    QCheck.Gen.(list_size (int_range 1 25) gen_op)

(* Reference model: plain functional FIFO. *)
let model_apply (queue, responses) op =
  match op with
  | Enq v | DetEnq v -> (queue @ [ v ], responses)
  | Deq | DetDeq -> (
      match queue with
      | [] -> ([], Queue_intf.empty_value :: responses)
      | x :: rest -> (rest, x :: responses))

(* ------------------------- properties --------------------------------- *)

(* 1. Sequential agreement of the DSS queue with the reference model,
   including mixed detectable and plain operations. *)
let prop_dss_queue_matches_model =
  QCheck.Test.make ~count:300 ~name:"dss queue = FIFO model (sequential)"
    arb_program (fun ops ->
      let q = make_dss_queue ~nthreads:1 ~capacity:64 () in
      let responses = ref [] in
      List.iter
        (fun op ->
          match op with
          | Enq v -> q.enqueue ~tid:0 v
          | DetEnq v ->
              q.prep_enqueue ~tid:0 v;
              q.exec_enqueue ~tid:0
          | Deq -> responses := q.dequeue ~tid:0 :: !responses
          | DetDeq ->
              q.prep_dequeue ~tid:0;
              responses := q.exec_dequeue ~tid:0 :: !responses)
        ops;
      let model_queue, model_responses =
        List.fold_left model_apply ([], []) ops
      in
      q.to_list () = model_queue && !responses = model_responses)

(* 2. Resolve always reports the last prepared operation faithfully. *)
let prop_resolve_reports_last_prepared =
  QCheck.Test.make ~count:300 ~name:"resolve reports last detectable op"
    arb_program (fun ops ->
      let q = make_dss_queue ~nthreads:1 ~capacity:64 () in
      let expected = ref Queue_intf.Nothing in
      List.iter
        (fun op ->
          match op with
          | Enq v -> q.enqueue ~tid:0 v
          | Deq -> ignore (q.dequeue ~tid:0)
          | DetEnq v ->
              q.prep_enqueue ~tid:0 v;
              q.exec_enqueue ~tid:0;
              expected := Queue_intf.Enq_done v
          | DetDeq ->
              q.prep_dequeue ~tid:0;
              let r = q.exec_dequeue ~tid:0 in
              expected :=
                (if r = Queue_intf.empty_value then Queue_intf.Deq_empty
                 else Queue_intf.Deq_done r))
        ops;
      q.resolve ~tid:0 = !expected)

(* 3. DSS transformation: base operations behave exactly like the
   underlying type. *)
let prop_dss_base_ops_transparent =
  let arb_ops =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 20)
          (frequency
             [ (2, map (fun v -> Q.Enqueue v) (int_range 0 50)); (2, return Q.Dequeue) ]))
  in
  QCheck.Test.make ~count:300 ~name:"D<T> base ops = T ops" arb_ops (fun ops ->
      let base = Q.spec () in
      let dss = Dss_spec.make ~nthreads:1 base in
      let tagged = List.map (fun op -> (0, Dss_spec.Base op)) ops in
      let plain = List.map (fun op -> (0, op)) ops in
      match (Spec.run_sequence dss tagged, Spec.run_sequence base plain) with
      | Some (ds, drs), Some (bs, brs) ->
          ds.Dss_spec.base = bs
          && List.for_all2
               (fun dr br ->
                 match dr with Dss_spec.Ret r -> r = br | _ -> false)
               drs brs
      | _ -> false)

(* 4. prep ; resolve^n is idempotent at the specification level. *)
let prop_resolve_idempotent =
  QCheck.Test.make ~count:200 ~name:"resolve idempotent (spec level)"
    QCheck.(pair (int_range 0 50) (int_range 1 5))
    (fun (v, n) ->
      let dss = Dss_spec.make ~nthreads:1 (Q.spec ()) in
      match dss.Spec.apply dss.Spec.init ~tid:0 (Dss_spec.Prep (Q.Enqueue v)) with
      | None -> false
      | Some (s, _) ->
          let rec loop s k acc =
            if k = 0 then acc
            else
              match dss.Spec.apply s ~tid:0 Dss_spec.Resolve with
              | Some (s', r) -> loop s' (k - 1) (r :: acc)
              | None -> []
          in
          let rs = loop s n [] in
          List.length rs = n
          && List.for_all
               (fun r -> r = Dss_spec.Status (Some (Q.Enqueue v), None))
               rs)

(* 5. Tagged words: make/idx/tags round-trip for arbitrary indices. *)
let prop_tagged_roundtrip =
  QCheck.Test.make ~count:500 ~name:"tagged word roundtrip"
    QCheck.(pair (int_bound Tagged.index_mask) (int_bound 31))
    (fun (idx, tagbits) ->
      let tags =
        List.filteri (fun i _ -> tagbits land (1 lsl i) <> 0)
          [ Tagged.enq_prep; Tagged.enq_compl; Tagged.deq_prep; Tagged.empty; Tagged.deq_done ]
        |> List.fold_left ( lor ) 0
      in
      let x = Tagged.make ~idx ~tags in
      Tagged.idx x = idx && Tagged.tags_of x = tags)

(* 6. Crash anywhere in a random detectable program: after recovery and
   retry-driven completion, the surviving values form a legal outcome —
   checked via strict linearizability of the recorded history. *)
let prop_crash_recovery_linearizable =
  let arb =
    QCheck.make
      ~print:(fun (steps, seed, evict, len) ->
        Printf.sprintf "crash_step=%d seed=%d evict=%.2f len=%d" steps seed
          evict len)
      QCheck.Gen.(
        quad (int_range 0 80) (int_range 0 1000)
          (oneofl [ 0.0; 0.5; 1.0 ])
          (int_range 0 3))
  in
  QCheck.Test.make ~count:150 ~name:"random crash: strictly linearizable" arb
    (fun (crash_step, seed, evict_p, preload) ->
      let q = make_dss_queue ~nthreads:2 ~capacity:64 () in
      let rec_ = Recorder.create () in
      for i = 1 to preload do
        Record.enqueue rec_ q ~tid:0 i
      done;
      let programs =
        [
          (fun () ->
            Record.prep_enqueue rec_ q ~tid:0 10;
            Record.exec_enqueue rec_ q ~tid:0 10);
          (fun () ->
            Record.prep_dequeue rec_ q ~tid:1;
            Record.exec_dequeue rec_ q ~tid:1);
        ]
      in
      let outcome =
        Sim.run q.heap
          ~policy:(Sim.Random_seed seed)
          ~crash:(Sim.Crash_at_step crash_step)
          ~threads:programs
      in
      if outcome.Sim.crashed then begin
        Recorder.crash rec_;
        Sim.apply_crash q.heap ~evict_p ~seed:(seed + 1);
        q.recover ();
        Record.resolve rec_ q ~tid:0;
        Record.resolve rec_ q ~tid:1
      end;
      let rec drain guard =
        if guard = 0 then ()
        else
          let v = ref 0 in
          ignore
            (Recorder.record rec_ ~tid:0 (Dss_spec.Base Q.Dequeue) (fun () ->
                 v := q.dequeue ~tid:0;
                 deq_response !v));
          if !v <> Queue_intf.empty_value then drain (guard - 1)
      in
      drain 20;
      Lincheck.is_linearizable ~mode:Lincheck.Strict (queue_spec ~nthreads:2)
        (Recorder.history rec_))

(* 7. Universal construction agrees with direct application of D<T>. *)
let prop_universal_matches_spec =
  let arb =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 15)
          (frequency
             [
               (2, map (fun v -> `Prep (Q.Enqueue v)) (int_range 0 20));
               (1, return (`Prep Q.Dequeue));
               (2, return `Exec);
               (2, map (fun v -> `Base (Q.Enqueue v)) (int_range 0 20));
               (2, return (`Base Q.Dequeue));
               (1, return `Resolve);
             ]))
  in
  QCheck.Test.make ~count:200 ~name:"universal construction = D<T>" arb
    (fun program ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module U = Dssq_universal.Universal.Make (M) in
      let spec = Q.spec () in
      let dss = Dss_spec.make ~nthreads:1 spec in
      let u = U.create ~nthreads:1 ~capacity:128 spec in
      let state = ref dss.Spec.init in
      let last_prepared = ref None in
      List.for_all
        (fun step ->
          let op =
            match step with
            | `Prep op ->
                last_prepared := Some op;
                Some (Dss_spec.Prep op)
            | `Exec -> Option.map (fun op -> Dss_spec.Exec op) !last_prepared
            | `Base op -> Some (Dss_spec.Base op)
            | `Resolve -> Some Dss_spec.Resolve
          in
          match op with
          | None -> true
          | Some op -> (
              let impl = U.perform u ~tid:0 op in
              match dss.Spec.apply !state ~tid:0 op with
              | Some (s', expected) ->
                  state := s';
                  impl = Some expected
              | None -> impl = None))
        program)

(* 8. The simulator is deterministic: identical seeds give identical
   memory-event statistics. *)
let prop_sim_deterministic =
  QCheck.Test.make ~count:50 ~name:"simulator determinism"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let run () =
        let q = make_dss_queue ~nthreads:3 ~capacity:64 () in
        let program ~tid () =
          q.enqueue ~tid tid;
          ignore (q.dequeue ~tid)
        in
        ignore
          (Sim.run q.heap ~policy:(Sim.Random_seed seed)
             ~threads:(List.init 3 (fun tid -> program ~tid)));
        let s = Heap.stats q.heap in
        (s.Heap.reads, s.Heap.writes, s.Heap.cases, s.Heap.flushes)
      in
      run () = run ())

(* 9. The detectable stack against a functional LIFO model, mixing
   detectable and plain operations. *)
type stack_op = Push of int | Pop | DetPush of int | DetPop

let prop_dss_stack_matches_model =
  let arb =
    QCheck.make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | Push v -> Printf.sprintf "push %d" v
               | Pop -> "pop"
               | DetPush v -> Printf.sprintf "det-push %d" v
               | DetPop -> "det-pop")
             ops))
      QCheck.Gen.(
        list_size (int_range 1 25)
          (frequency
             [
               (3, map (fun v -> Push v) (int_range 0 99));
               (3, return Pop);
               (2, map (fun v -> DetPush v) (int_range 100 199));
               (2, return DetPop);
             ]))
  in
  QCheck.Test.make ~count:300 ~name:"dss stack = LIFO model (sequential)" arb
    (fun ops ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module S = Dssq_core.Dss_stack.Make (M) in
      let s = S.create ~nthreads:1 ~capacity:64 () in
      let responses = ref [] in
      List.iter
        (fun op ->
          match op with
          | Push v -> S.push s ~tid:0 v
          | DetPush v ->
              S.prep_push s ~tid:0 v;
              S.exec_push s ~tid:0
          | Pop -> responses := S.pop s ~tid:0 :: !responses
          | DetPop ->
              S.prep_pop s ~tid:0;
              responses := S.exec_pop s ~tid:0 :: !responses)
        ops;
      let model_stack, model_responses =
        List.fold_left
          (fun (st, rs) op ->
            match op with
            | Push v | DetPush v -> (v :: st, rs)
            | Pop | DetPop -> (
                match st with
                | [] -> ([], Queue_intf.empty_value :: rs)
                | x :: rest -> (rest, x :: rs)))
          ([], []) ops
      in
      S.to_list s = model_stack && !responses = model_responses)

(* 10. The packed detectable register against a trivial model, with
   resolve consistency after every operation. *)
let prop_dss_register_matches_model =
  let arb =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 30)
          (frequency
             [
               (3, map (fun v -> `Write v) (int_range 0 999));
               (3, return `Read);
               (2, map (fun v -> `Det_write v) (int_range 0 999));
             ]))
  in
  QCheck.Test.make ~count:300 ~name:"dss register = register model" arb
    (fun ops ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module R = Dssq_core.Dss_register.Make (M) in
      let r = R.create ~nthreads:1 () in
      let model = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Write v ->
              R.write r ~tid:0 v;
              model := v;
              true
          | `Read -> R.read r ~tid:0 = !model
          | `Det_write v ->
              R.prep_write r ~tid:0 v;
              R.exec_write r ~tid:0;
              model := v;
              R.read r ~tid:0 = !model
              && R.resolve r ~tid:0 = R.Write_done v)
        ops)

(* 11. Random PMwCAS batches applied sequentially behave like atomic
   multi-word updates on a reference array. *)
let prop_pmwcas_matches_reference =
  let arb =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 20)
          (list_size (int_range 1 3)
             (pair (int_range 0 5) (int_range 0 50))))
  in
  QCheck.Test.make ~count:200 ~name:"pmwcas = atomic multi-word reference" arb
    (fun batches ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module P = Dssq_pmwcas.Pmwcas.Make (M) in
      let p = P.create ~nwords:6 ~nthreads:1 () in
      let addrs = Array.init 6 (fun _ -> P.alloc p 0) in
      let reference = Array.make 6 0 in
      List.for_all
        (fun batch ->
          (* Dedupe addresses within a batch (a pmwcas touches each word
             once). *)
          let batch =
            List.sort_uniq (fun (a, _) (b, _) -> compare a b) batch
          in
          let entries =
            List.map
              (fun (i, nv) -> (addrs.(i), reference.(i), nv, `Shared))
              batch
          in
          let ok = P.pmwcas p ~tid:0 entries in
          if ok then List.iter (fun (i, nv) -> reference.(i) <- nv) batch;
          (* With correct expectations the op must succeed, and memory
             must equal the reference afterwards either way. *)
          ok
          && List.for_all
               (fun i -> P.read p ~tid:0 addrs.(i) = reference.(i))
               [ 0; 1; 2; 3; 4; 5 ])
        batches)

(* 12. Explorer coverage: the number of executions of two independent
   single-step threads matches the closed form. *)
let prop_explore_counts =
  QCheck.Test.make ~count:20 ~name:"explorer visits all interleavings"
    QCheck.(int_range 1 3)
    (fun n ->
      (* n threads, one memory op each => each thread contributes 2 steps
         (start + op); executions = multinomial (2n)! / 2!^n. *)
      let expected =
        let fact k = List.fold_left ( * ) 1 (List.init k (fun i -> i + 1)) in
        fact (2 * n) / int_of_float (2. ** float_of_int n)
      in
      let count =
        (* [reduction:false]: the closed form counts raw interleavings;
           the threads touch distinct cells, so the sleep-set search
           would visit strictly fewer (see test_explore.ml). *)
        (Explore.run
           (Explore.make ~reduction:false
             ~setup:(fun () ->
               let heap = Heap.create () in
               let (module M) = Sim.memory heap in
               let cells = Array.init n (fun _ -> M.alloc 0) in
               {
                 Explore.ctx = ();
                 heap;
                 threads =
                   List.init n (fun i () -> M.write cells.(i) 1);
               })
              ~check:(fun () _ ~crashed:_ -> ())
              ()))
          .Explore.executions
      in
      count = expected)

(* 13. Flush coalescing is persistence-equivalent to eager flushing: run
   one random single-threaded memory program against two heaps, one
   flushing eagerly ([Heap.flush]; [drain] is a no-op) and one routing
   every flush through the per-thread persist buffer
   ([Heap.flush_coalesced]; [Heap.drain] retires it).  At every
   persistence point — each drain, each fence, and the end of the
   program — the persisted contents and the dirty-line set of the two
   heaps must coincide.  Between persistence points they legitimately
   differ (that deferral is the whole optimisation); at them, coalescing
   must be invisible. *)
type mem_op =
  | MWrite of int * int
  | MCas of int * int
  | MFlush of int
  | MDrain
  | MFence

let prop_coalescing_matches_eager =
  let module Cell = Dssq_pmem.Cell in
  let ncells = 4 in
  let gen_mem_op =
    QCheck.Gen.(
      frequency
        [
          ( 4,
            map2
              (fun c v -> MWrite (c, v))
              (int_bound (ncells - 1))
              (int_range 0 99) );
          ( 2,
            map2
              (fun c v -> MCas (c, v))
              (int_bound (ncells - 1))
              (int_range 0 99) );
          (4, map (fun c -> MFlush c) (int_bound (ncells - 1)));
          (2, return MDrain);
          (1, return MFence);
        ])
  in
  let pp_op = function
    | MWrite (c, v) -> Printf.sprintf "w%d<-%d" c v
    | MCas (c, v) -> Printf.sprintf "cas%d<-%d" c v
    | MFlush c -> Printf.sprintf "fl%d" c
    | MDrain -> "drain"
    | MFence -> "fence"
  in
  let arb =
    QCheck.make
      ~print:(fun (ls, ops) ->
        Printf.sprintf "line_size=%d [%s]" ls
          (String.concat ";" (List.map pp_op ops)))
      QCheck.Gen.(
        pair (oneofl [ 1; 2; 8 ]) (list_size (int_range 1 60) gen_mem_op))
  in
  QCheck.Test.make ~count:300
    ~name:"coalesced persistence points = eager persistence" arb
    (fun (line_size, ops) ->
      (* Interpret the program on one heap; snapshot (dirty lines,
         persisted values) at every persistence point. *)
      let run ~coalesce =
        let heap = Heap.create ~line_size () in
        let cells = Array.init ncells (fun i -> Heap.alloc heap i) in
        let snapshots = ref [] in
        let snap () =
          snapshots :=
            ( Heap.dirty_lines heap,
              Array.to_list
                (Array.map (fun c -> c.Cell.persisted) cells) )
            :: !snapshots
        in
        let flush c =
          if coalesce then Heap.flush_coalesced heap cells.(c)
          else Heap.flush heap cells.(c)
        in
        List.iter
          (fun op ->
            match op with
            | MWrite (c, v) -> Heap.write heap cells.(c) v
            | MCas (c, v) ->
                let cur = Heap.read heap cells.(c) in
                ignore (Heap.cas heap cells.(c) ~expected:cur ~desired:v)
            | MFlush c -> flush c
            | MDrain ->
                Heap.drain heap;
                snap ()
            | MFence ->
                Heap.fence heap;
                snap ())
          (ops @ [ MDrain ]);
        !snapshots
      in
      run ~coalesce:false = run ~coalesce:true)

(* 14. Flat combining is observationally equivalent to eager execution:
   one random sequential schedule of detectable swap pairs (prep;exec by
   alternating threads) is driven twice over sim heaps — once eager,
   once with [~combine:true] on a combine-mode (buffered) heap — and
   every observable must coincide: each operation's response, the
   resolve verdict of every thread after a crash at a chosen batch
   boundary (combine installs close one persist epoch per batch, so
   between operations IS the boundary), the retried responses, and the
   recovered abstract state.  Flush/fence counts legitimately differ —
   that deferral is the optimisation — but nothing the caller or the
   recovery protocol can see may.  The crash point ranges over every
   boundary and both crash kinds (after prep: resolve must say Pending
   and the retry must agree; after exec: resolve must say Done with the
   same response), under both extreme eviction verdicts. *)
let prop_combine_matches_eager =
  let module Sw = Dssq_spec.Specs.Swap in
  let gen_op =
    QCheck.Gen.(
      pair (int_bound 1)
        (frequency
           [ (3, map (fun v -> Sw.Swap v) (int_range 0 20)); (1, return Sw.Read) ]))
  in
  let pp_op = function Sw.Swap v -> Printf.sprintf "swap%d" v | Sw.Read -> "read" in
  let arb =
    QCheck.make
      ~print:(fun (ops, crash_at, after_prep, evict) ->
        Printf.sprintf "[%s] crash_at=%d after_prep=%b evict=%.0f"
          (String.concat ";"
             (List.map (fun (t, o) -> Printf.sprintf "t%d:%s" t (pp_op o)) ops))
          crash_at after_prep evict)
      QCheck.Gen.(
        quad
          (list_size (int_range 1 10) gen_op)
          (int_range 0 10) bool
          (oneofl [ 0.0; 1.0 ]))
  in
  QCheck.Test.make ~count:300 ~name:"flat combining = eager (observations)"
    arb
    (fun (ops, crash_at, after_prep, evict_p) ->
      let run ~combine =
        let heap = Heap.create ~combine () in
        let (module M) = Sim.memory heap in
        let module O = Dssq_core.Dss_swap.Make (M) in
        let o = O.create ~combine ~nthreads:2 () in
        let obs = ref [] in
        let note x = obs := x :: !obs in
        let resolved ~tid =
          Format.asprintf "%a" O.pp_resolved (O.resolve o ~tid)
        in
        let crash () =
          Sim.apply_crash heap ~evict_p ~seed:42;
          O.recover o;
          for tid = 0 to 1 do
            note (resolved ~tid);
            match O.resolve o ~tid with
            | Pending _ ->
                let (Sw.Value v) = O.exec o ~tid in
                note (Printf.sprintf "retry:%d" v)
            | _ -> ()
          done
        in
        List.iteri
          (fun i (tid, op) ->
            let boundary = i = crash_at in
            O.prep o ~tid op;
            if boundary && after_prep then crash ()
            else begin
              let (Sw.Value v) = O.exec o ~tid in
              note (Printf.sprintf "resp:%d" v);
              if boundary then crash ()
            end)
          ops;
        note (Printf.sprintf "final:%d" (O.peek o));
        List.rev !obs
      in
      run ~combine:false = run ~combine:true)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dss_queue_matches_model;
      prop_resolve_reports_last_prepared;
      prop_dss_base_ops_transparent;
      prop_resolve_idempotent;
      prop_tagged_roundtrip;
      prop_crash_recovery_linearizable;
      prop_universal_matches_spec;
      prop_sim_deterministic;
      prop_dss_stack_matches_model;
      prop_dss_register_matches_model;
      prop_pmwcas_matches_reference;
      prop_explore_counts;
      prop_coalescing_matches_eager;
      prop_combine_matches_eager;
    ]
