(** Tests for the workload/benchmark machinery: statistics, report
    rendering, the discrete-event throughput model, the native harness
    (tiny run), and the experiment drivers (tiny parameters). *)

module Stats = Dssq_workload.Stats
module Report = Dssq_workload.Report
module Sim_throughput = Dssq_workload.Sim_throughput
module Native_throughput = Dssq_workload.Native_throughput
module Experiments = Dssq_workload.Experiments

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev" 1. (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0. (Stats.stddev [ 5. ]);
  Alcotest.(check (float 1e-6)) "rsd" 50. (Stats.rsd [ 1.; 2.; 3. ]);
  Alcotest.(check bool) "mean empty is nan" true (Float.is_nan (Stats.mean []));
  Alcotest.(check bool) "rsd empty is nan" true (Float.is_nan (Stats.rsd []));
  Alcotest.(check bool)
    "minimum empty is nan" true
    (Float.is_nan (Stats.minimum []));
  Alcotest.(check bool)
    "maximum empty is nan" true
    (Float.is_nan (Stats.maximum []));
  Alcotest.(check (float 1e-9)) "minimum" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "maximum" 3. (Stats.maximum [ 3.; 1.; 2. ])

(* Pinned percentile values: the linear-interpolation (R-7) definition
   has well-known exact answers on small samples; these pin the rank
   formula so an off-by-one (n+1 vs n-1, or an unclamped p=100 index)
   cannot creep back in. *)
let test_percentile () =
  let p q xs = Stats.percentile q xs in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (p 50. []));
  Alcotest.(check (float 1e-9)) "n=1 any p" 7. (p 25. [ 7. ]);
  Alcotest.(check (float 1e-9)) "n=1 p=0" 7. (p 0. [ 7. ]);
  Alcotest.(check (float 1e-9)) "n=1 p=100" 7. (p 100. [ 7. ]);
  (* n=2: interpolates the gap linearly. *)
  Alcotest.(check (float 1e-9)) "n=2 median" 15. (p 50. [ 10.; 20. ]);
  Alcotest.(check (float 1e-9)) "n=2 p=25" 12.5 (p 25. [ 10.; 20. ]);
  (* n=4, unsorted input: rank of p=50 is 1.5. *)
  Alcotest.(check (float 1e-9)) "n=4 median" 2.5 (p 50. [ 4.; 1.; 3.; 2. ]);
  (* n=5: odd length, exact middle element, no interpolation. *)
  Alcotest.(check (float 1e-9))
    "n=5 median" 3.
    (p 50. [ 5.; 4.; 3.; 2.; 1. ]);
  (* Endpoints are the order statistics themselves. *)
  Alcotest.(check (float 1e-9)) "p=0 is min" 1. (p 0. [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p=100 is max" 3. (p 100. [ 3.; 1.; 2. ]);
  (* The classic R-7 check: p=75 over 1..4 has rank 2.25. *)
  Alcotest.(check (float 1e-9)) "n=4 p=75" 3.25 (p 75. [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "median =" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0, 100]") (fun () ->
      ignore (p 101. [ 1. ]))

let test_detectable_fraction () =
  let count pct =
    let n = ref 0 in
    for i = 0 to 99 do
      if Sim_throughput.detectable ~det_pct:pct i then incr n
    done;
    !n
  in
  Alcotest.(check int) "0%" 0 (count 0);
  Alcotest.(check int) "25%" 25 (count 25);
  Alcotest.(check int) "50%" 50 (count 50);
  Alcotest.(check int) "75%" 75 (count 75);
  Alcotest.(check int) "100%" 100 (count 100)

let test_sim_throughput_positive () =
  let mops =
    Sim_throughput.measure ~horizon_ns:50_000. ~mk:"dss-queue" ~nthreads:2 ()
  in
  Alcotest.(check bool) "positive throughput" true (mops > 0.)

let test_sim_throughput_deterministic () =
  let run () =
    Sim_throughput.measure ~seed:5 ~horizon_ns:50_000. ~mk:"dss-queue"
      ~nthreads:3 ()
  in
  Alcotest.(check (float 1e-12)) "same seed, same result" (run ()) (run ())

let test_sim_throughput_ordering () =
  (* The headline qualitative result at low parallelism: MS > DSS
     non-detectable > DSS detectable. *)
  let measure mk det_pct =
    Sim_throughput.measure ~horizon_ns:100_000. ~mk ~det_pct ~nthreads:2 ()
  in
  let ms = measure "ms-queue" 0 in
  let nondet = measure "dss-queue" 0 in
  let det = measure "dss-queue" 100 in
  Alcotest.(check bool)
    (Printf.sprintf "ms (%.2f) > nondet (%.2f)" ms nondet)
    true (ms > nondet);
  Alcotest.(check bool)
    (Printf.sprintf "nondet (%.2f) > det (%.2f)" nondet det)
    true (nondet > det)

let test_sim_throughput_flush_cost_matters () =
  let measure flush_ns =
    let costs =
      { Sim_throughput.default_costs with flush_ns = float_of_int flush_ns }
    in
    Sim_throughput.measure ~costs ~horizon_ns:100_000. ~mk:"dss-queue"
      ~det_pct:100 ~nthreads:1 ()
  in
  Alcotest.(check bool) "cheaper flushes, more throughput" true
    (measure 0 > measure 500)

let test_all_queues_run_in_model () =
  List.iter
    (fun mk ->
      let mops =
        Sim_throughput.measure ~horizon_ns:30_000. ~mk ~nthreads:2 ()
      in
      Alcotest.(check bool) (mk ^ " produces throughput") true (mops > 0.))
    [ "dss-queue"; "ms-queue"; "durable-queue"; "log-queue"; "fast-caswe"; "general-caswe" ]

let test_native_throughput_smoke () =
  Dssq_memory.Persist_cost.configure ~flush:0 ~fence:0 ();
  let mops =
    Native_throughput.measure ~mk:"dss-queue" ~nthreads:2 ~duration:0.05 ()
  in
  Alcotest.(check bool) "native harness runs" true (mops > 0.)

let test_report_rendering () =
  let series =
    [
      {
        Report.label = "a";
        points = [ { Report.x = 1; samples = [ 1.0; 1.1 ] } ];
      };
      { Report.label = "b"; points = [ { Report.x = 1; samples = [ 2.0 ] } ] };
    ]
  in
  let csv = Report.to_csv ~x_label:"threads" series in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 0 && String.sub csv 0 11 = "threads,a,b");
  let buf = Buffer.create 64 in
  let out = Format.formatter_of_buffer buf in
  Report.print_table ~out ~title:"t" ~x_label:"threads" ~y_label:"Mops/s" series;
  Report.print_chart ~out series;
  Format.pp_print_flush out ();
  Alcotest.(check bool) "table rendered" true
    (String.length (Buffer.contents buf) > 0)

let test_experiments_tiny () =
  let series =
    Experiments.fig5a ~threads:[ 1; 2 ] ~repeats:1 ~horizon_ns:20_000. ()
  in
  Alcotest.(check int) "three series" 3 (List.length series);
  List.iter
    (fun s -> Alcotest.(check int) "two points" 2 (List.length s.Report.points))
    series;
  let series_b =
    Experiments.fig5b ~threads:[ 1 ] ~repeats:1 ~horizon_ns:20_000. ()
  in
  Alcotest.(check int) "four series" 4 (List.length series_b)

let test_ablate_recovery_scaling () =
  let series = Experiments.ablate_recovery ~lengths:[ 0; 64 ] ~nthreads:2 () in
  Alcotest.(check int) "two styles" 2 (List.length series);
  (* Centralized recovery scans the list: cost grows with length. *)
  let centralized = List.hd series in
  match centralized.Report.points with
  | [ p0; p64 ] ->
      Alcotest.(check bool) "recovery cost grows with queue length" true
        (Dssq_workload.Stats.mean p64.samples
        > Dssq_workload.Stats.mean p0.samples)
  | _ -> Alcotest.fail "expected two points"

let test_ablate_pmwcas_scaling () =
  let series = Experiments.ablate_pmwcas ~widths:[ 1; 3 ] () in
  List.iter
    (fun s ->
      match s.Report.points with
      | [ p1; p3 ] ->
          Alcotest.(check bool)
            (s.Report.label ^ ": wider is costlier")
            true
            (Stats.mean p3.samples > Stats.mean p1.samples)
      | _ -> Alcotest.fail "expected two points")
    series

let test_ablate_crash_mtbf () =
  (* Effective throughput under periodic crashes must grow with the
     mean time between failures (recovery amortizes). *)
  let series =
    Experiments.ablate_crash_mtbf ~mtbfs_us:[ 50; 500 ] ~nthreads:2 ~cycles:3
      ~repeats:1 ()
  in
  List.iter
    (fun s ->
      match s.Report.points with
      | [ p50; p500 ] ->
          Alcotest.(check bool)
            (s.Report.label ^ ": longer MTBF, higher throughput")
            true
            (Stats.mean p500.samples > Stats.mean p50.samples);
          Alcotest.(check bool)
            (s.Report.label ^ ": positive throughput")
            true
            (Stats.mean p50.samples > 0.)
      | _ -> Alcotest.fail "expected two points")
    series

let test_ablate_linesize_tiny () =
  let series =
    Experiments.ablate_linesize ~nthreads:2 ~line_sizes:[ 1; 8 ] ~repeats:1
      ~horizon_ns:30_000. ()
  in
  Alcotest.(check int) "fig5a ∪ fig5b queues" 6 (List.length series);
  let dss =
    List.find
      (fun (s : Dssq_obs.Run_report.series) -> s.label = "dss-det")
      series
  in
  match dss.points with
  | [ p1; p8 ] ->
      let open Dssq_memory.Memory_intf in
      Alcotest.(check int) "size 1 point" 1 p1.Dssq_obs.Run_report.x;
      Alcotest.(check int) "nothing elided at size 1" 0
        p1.Dssq_obs.Run_report.events.elided_flushes;
      Alcotest.(check bool) "elision at size 8" true
        (p8.Dssq_obs.Run_report.events.elided_flushes > 0);
      let per_op (p : Dssq_obs.Run_report.point) =
        float_of_int p.events.flushes /. float_of_int (max 1 p.ops)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fewer flushes/op at size 8 (%.2f < %.2f)" (per_op p8)
           (per_op p1))
        true
        (per_op p8 < per_op p1)
  | _ -> Alcotest.fail "expected two points"

(* The Line module is shared by both backends, so the same scripted
   single-threaded DSS queue run must report identical flush and elision
   deltas on the counted simulator heap and on the native Counted
   backend — the cross-backend contract of the line refactor. *)
let test_cross_backend_flush_parity () =
  let line_size = 8 in
  let pairs = 40 in
  let script (ops : Dssq_core.Queue_intf.ops) =
    for i = 1 to pairs do
      ops.d_enqueue ~tid:0 i;
      ignore (ops.d_dequeue ~tid:0)
    done
  in
  let cfg =
    Dssq_core.Queue_intf.config ~line_size ~nthreads:2 ~capacity:256 ()
  in
  (* Simulator backend. *)
  let heap = Dssq_pmem.Heap.create ~line_size () in
  let (module S) = Dssq_sim.Sim.counted_memory heap in
  let ops_sim =
    Dssq_workload.Registry.setup (module S) ~mk:"dss-queue" ~init_nodes:16 cfg
  in
  S.reset_counters ();
  ignore (Dssq_sim.Sim.run heap ~threads:[ (fun () -> script ops_sim) ]);
  let c_sim = S.counters () in
  (* Native backend (restore the process-wide word-granular default
     afterwards: other tests rely on it). *)
  Fun.protect
    ~finally:(fun () -> Dssq_memory.Native.set_line_size 1)
    (fun () ->
      Dssq_memory.Native.set_line_size line_size;
      let module C = Dssq_memory.Native.Counted () in
      let ops_nat =
        Dssq_workload.Registry.setup
          (module C)
          ~mk:"dss-queue" ~init_nodes:16 cfg
      in
      C.reset_counters ();
      script ops_nat;
      let c_nat = C.counters () in
      let open Dssq_memory.Memory_intf in
      Alcotest.(check int) "flushes agree" c_sim.flushes c_nat.flushes;
      Alcotest.(check int) "elisions agree" c_sim.elided_flushes
        c_nat.elided_flushes;
      Alcotest.(check bool) "elision actually exercised" true
        (c_sim.elided_flushes > 0);
      Alcotest.(check int) "writes agree" c_sim.writes c_nat.writes;
      Alcotest.(check int) "CASes agree" c_sim.cases c_nat.cases)

let test_op_latency_ordering () =
  let lat = Experiments.op_latency () in
  let get name =
    let _, nondet, det = List.find (fun (n, _, _) -> n = name) lat in
    (nondet, det)
  in
  let _, dss_det = get "dss-queue" in
  let ms_nondet, _ = get "ms-queue" in
  let _, gen_det = get "general-caswe" in
  let _, fast_det = get "fast-caswe" in
  Alcotest.(check bool) "ms cheapest" true (ms_nondet < dss_det);
  Alcotest.(check bool) "dss beats general caswe" true (dss_det < gen_det);
  Alcotest.(check bool) "fast caswe beats general" true (fast_det < gen_det)

let suite =
  [
    Alcotest.test_case "statistics" `Quick test_stats;
    Alcotest.test_case "percentile pinned values" `Quick test_percentile;
    Alcotest.test_case "detectable fraction spread" `Quick
      test_detectable_fraction;
    Alcotest.test_case "sim throughput positive" `Quick
      test_sim_throughput_positive;
    Alcotest.test_case "sim throughput deterministic" `Quick
      test_sim_throughput_deterministic;
    Alcotest.test_case "figure 5a ordering at low parallelism" `Quick
      test_sim_throughput_ordering;
    Alcotest.test_case "flush cost drives the gap" `Quick
      test_sim_throughput_flush_cost_matters;
    Alcotest.test_case "all queues run in the model" `Quick
      test_all_queues_run_in_model;
    Alcotest.test_case "native harness smoke" `Quick test_native_throughput_smoke;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "experiment drivers (tiny)" `Quick test_experiments_tiny;
    Alcotest.test_case "ablation: recovery cost scales" `Quick
      test_ablate_recovery_scaling;
    Alcotest.test_case "ablation: pmwcas width scales" `Quick
      test_ablate_pmwcas_scaling;
    Alcotest.test_case "ablation: crash MTBF amortizes" `Quick
      test_ablate_crash_mtbf;
    Alcotest.test_case "ablation: line size elides flushes" `Quick
      test_ablate_linesize_tiny;
    Alcotest.test_case "cross-backend flush/elision parity" `Quick
      test_cross_backend_flush_parity;
    Alcotest.test_case "modelled op latency ordering" `Quick
      test_op_latency_ordering;
  ]
