(** Tests for the detectable stack ([Dss_stack]): LIFO semantics,
    detectability lifecycle, concurrency against [D<stack>], and crash
    sweeps with exactly-once retry — the DSS-queue test plan replayed on
    a different type, evidencing that the methodology generalizes. *)

open Helpers
module St = Specs.Stack

type ds = {
  heap : Heap.t;
  push : tid:int -> int -> unit;
  pop : tid:int -> int;
  prep_push : tid:int -> int -> unit;
  exec_push : tid:int -> unit;
  prep_pop : tid:int -> unit;
  exec_pop : tid:int -> int;
  resolve : tid:int -> Queue_intf.resolved;
  recover : unit -> unit;
  to_list : unit -> int list;
}

let make ?(reclaim = true) ~nthreads ~capacity () : ds =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module S = Dssq_core.Dss_stack.Make (M) in
  let s = S.create ~reclaim ~nthreads ~capacity () in
  {
    heap;
    push = (fun ~tid v -> S.push s ~tid v);
    pop = (fun ~tid -> S.pop s ~tid);
    prep_push = (fun ~tid v -> S.prep_push s ~tid v);
    exec_push = (fun ~tid -> S.exec_push s ~tid);
    prep_pop = (fun ~tid -> S.prep_pop s ~tid);
    exec_pop = (fun ~tid -> S.exec_pop s ~tid);
    resolve = (fun ~tid -> S.resolve s ~tid);
    recover = (fun () -> S.recover s);
    to_list = (fun () -> S.to_list s);
  }

let test_lifo () =
  let s = make ~nthreads:2 ~capacity:64 () in
  List.iter (fun v -> s.push ~tid:0 v) [ 1; 2; 3 ];
  Alcotest.check int_list "contents" [ 3; 2; 1 ] (s.to_list ());
  Alcotest.(check int) "pop 3" 3 (s.pop ~tid:1);
  Alcotest.(check int) "pop 2" 2 (s.pop ~tid:0);
  s.push ~tid:1 4;
  Alcotest.(check int) "pop 4" 4 (s.pop ~tid:0);
  Alcotest.(check int) "pop 1" 1 (s.pop ~tid:0);
  Alcotest.(check int) "empty" Queue_intf.empty_value (s.pop ~tid:0)

let test_detectable_lifecycle () =
  let s = make ~nthreads:2 ~capacity:64 () in
  Alcotest.check resolved "nothing" Queue_intf.Nothing (s.resolve ~tid:0);
  s.prep_push ~tid:0 7;
  Alcotest.check resolved "push pending" (Queue_intf.Enq_pending 7)
    (s.resolve ~tid:0);
  s.exec_push ~tid:0;
  Alcotest.check resolved "push done" (Queue_intf.Enq_done 7) (s.resolve ~tid:0);
  s.prep_pop ~tid:1;
  Alcotest.check resolved "pop pending" Queue_intf.Deq_pending (s.resolve ~tid:1);
  Alcotest.(check int) "pops the value" 7 (s.exec_pop ~tid:1);
  Alcotest.check resolved "pop done" (Queue_intf.Deq_done 7) (s.resolve ~tid:1);
  s.prep_pop ~tid:0;
  Alcotest.(check int) "empty pop" Queue_intf.empty_value (s.exec_pop ~tid:0);
  Alcotest.check resolved "pop empty" Queue_intf.Deq_empty (s.resolve ~tid:0)

let test_nondet_pop_marking () =
  let s = make ~nthreads:1 ~capacity:64 () in
  s.push ~tid:0 5;
  s.prep_pop ~tid:0;
  (* A non-detectable pop claims the node the prepared pop targeted. *)
  Alcotest.(check int) "nondet pop" 5 (s.pop ~tid:0);
  Alcotest.check resolved "detectable pop still pending" Queue_intf.Deq_pending
    (s.resolve ~tid:0)

let test_recycling () =
  let s = make ~nthreads:1 ~capacity:32 () in
  for i = 1 to 400 do
    s.prep_push ~tid:0 i;
    s.exec_push ~tid:0;
    s.prep_pop ~tid:0;
    Alcotest.(check int) "lifo under recycling" i (s.exec_pop ~tid:0)
  done

(* ----------------------- concurrent lincheck ----------------------- *)

let dstack ~nthreads = Dss_spec.make ~nthreads (St.spec ())

let pop_response v : (St.op, St.response) Dss_spec.response =
  if v = Queue_intf.empty_value then Dss_spec.Ret St.Empty
  else Dss_spec.Ret (St.Value v)

let resolved_response (r : Queue_intf.resolved) :
    (St.op, St.response) Dss_spec.response =
  match r with
  | Queue_intf.Nothing -> Dss_spec.Status (None, None)
  | Queue_intf.Enq_pending v -> Dss_spec.Status (Some (St.Push v), None)
  | Queue_intf.Enq_done v -> Dss_spec.Status (Some (St.Push v), Some St.Ok)
  | Queue_intf.Deq_pending -> Dss_spec.Status (Some St.Pop, None)
  | Queue_intf.Deq_empty -> Dss_spec.Status (Some St.Pop, Some St.Empty)
  | Queue_intf.Deq_done v -> Dss_spec.Status (Some St.Pop, Some (St.Value v))

let check_stack_strict ~nthreads history =
  match Lincheck.check ~mode:Lincheck.Strict (dstack ~nthreads) history with
  | Lincheck.Linearizable _ -> ()
  | Lincheck.Not_linearizable _ -> Alcotest.fail "stack history not linearizable"

let test_concurrent_lincheck () =
  for seed = 1 to 25 do
    let s = make ~nthreads:2 ~capacity:128 () in
    let rec_ = Recorder.create () in
    let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
    let prog ~tid () =
      record ~tid (Dss_spec.Prep (St.Push (10 + tid))) (fun () ->
          s.prep_push ~tid (10 + tid);
          Dss_spec.Ack);
      record ~tid (Dss_spec.Exec (St.Push (10 + tid))) (fun () ->
          s.exec_push ~tid;
          Dss_spec.Ret St.Ok);
      record ~tid (Dss_spec.Prep St.Pop) (fun () ->
          s.prep_pop ~tid;
          Dss_spec.Ack);
      record ~tid (Dss_spec.Exec St.Pop) (fun () ->
          pop_response (s.exec_pop ~tid));
      record ~tid Dss_spec.Resolve (fun () -> resolved_response (s.resolve ~tid))
    in
    let outcome =
      Sim.run s.heap ~policy:(Sim.Random_seed seed)
        ~threads:[ prog ~tid:0; prog ~tid:1 ]
    in
    Sim.check_thread_errors outcome;
    check_stack_strict ~nthreads:2 (Recorder.history rec_)
  done

(* ------------------------- crash sweeps ---------------------------- *)

let test_crash_sweep_push () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let s = make ~nthreads:2 ~capacity:48 () in
        s.push ~tid:1 90;
        let t () =
          s.prep_push ~tid:0 5;
          s.exec_push ~tid:0
        in
        let outcome =
          Sim.run s.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash s.heap ~evict_p ~seed:(7000 + !step);
          s.recover ();
          (match s.resolve ~tid:0 with
          | Queue_intf.Enq_done 5 -> ()
          | Queue_intf.Enq_pending 5 -> s.exec_push ~tid:0
          | Queue_intf.Nothing ->
              s.prep_push ~tid:0 5;
              s.exec_push ~tid:0
          | r ->
              Alcotest.failf "unexpected resolution: %s"
                (Format.asprintf "%a" Queue_intf.pp_resolved r));
          let fives = List.filter (( = ) 5) (s.to_list ()) in
          Alcotest.(check int)
            (Printf.sprintf "exactly one 5 (crash step %d)" !step)
            1 (List.length fives);
          Alcotest.(check bool) "90 never lost" true
            (List.mem 90 (s.to_list ()))
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_crash_sweep_pop () =
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let s = make ~nthreads:2 ~capacity:48 () in
        List.iter (fun v -> s.push ~tid:1 v) [ 1; 2; 3 ];
        let t () =
          s.prep_pop ~tid:0;
          ignore (s.exec_pop ~tid:0)
        in
        let outcome =
          Sim.run s.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash s.heap ~evict_p ~seed:(8000 + !step);
          s.recover ();
          let popped =
            match s.resolve ~tid:0 with
            | Queue_intf.Deq_done v -> v
            | Queue_intf.Deq_pending -> s.exec_pop ~tid:0
            | Queue_intf.Nothing ->
                s.prep_pop ~tid:0;
                s.exec_pop ~tid:0
            | r ->
                Alcotest.failf "unexpected resolution: %s"
                  (Format.asprintf "%a" Queue_intf.pp_resolved r)
          in
          Alcotest.(check int)
            (Printf.sprintf "popped the top exactly once (crash step %d)" !step)
            3 popped;
          Alcotest.check int_list "remaining" [ 2; 1 ] (s.to_list ())
        end;
        incr step
      done)
    [ 0.0; 1.0; 0.5 ]

let test_values_conserved_concurrent () =
  for seed = 1 to 15 do
    let nthreads = 3 in
    let s = make ~nthreads ~capacity:256 () in
    let popped = Array.make nthreads [] in
    let prog ~tid () =
      for i = 0 to 7 do
        s.push ~tid ((tid * 100) + i);
        let v = s.pop ~tid in
        if v <> Queue_intf.empty_value then popped.(tid) <- v :: popped.(tid)
      done
    in
    let outcome =
      Sim.run s.heap ~policy:(Sim.Random_seed seed)
        ~threads:(List.init nthreads (fun tid -> prog ~tid))
    in
    Sim.check_thread_errors outcome;
    let out = Array.to_list popped |> List.concat in
    let all = List.sort compare (out @ s.to_list ()) in
    let expected =
      List.sort compare
        (List.concat_map
           (fun tid -> List.init 8 (fun i -> (tid * 100) + i))
           [ 0; 1; 2 ])
    in
    Alcotest.check int_list "multiset conserved" expected all
  done

let suite =
  [
    Alcotest.test_case "lifo order" `Quick test_lifo;
    Alcotest.test_case "detectable lifecycle" `Quick test_detectable_lifecycle;
    Alcotest.test_case "non-detectable pop marking" `Quick
      test_nondet_pop_marking;
    Alcotest.test_case "node recycling" `Quick test_recycling;
    Alcotest.test_case "concurrent strictly linearizable" `Quick
      test_concurrent_lincheck;
    Alcotest.test_case "crash sweep: push (exactly once)" `Quick
      test_crash_sweep_push;
    Alcotest.test_case "crash sweep: pop (exactly once)" `Quick
      test_crash_sweep_pop;
    Alcotest.test_case "concurrent values conserved" `Quick
      test_values_conserved_concurrent;
  ]
