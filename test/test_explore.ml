(** The model checker checking itself: schedule-token round-trips,
    deterministic replay (per-line eviction verdicts included),
    sleep-set reduction soundness (same verdict as the naive search,
    strictly fewer executions on independent threads), iterative
    deepening boundaries, and per-line crash-adversary coverage. *)

open Helpers

let with_mem () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  (heap, (module M : Dssq_memory.Memory_intf.S))

(* ------------------------- token round-trip ------------------------- *)

let decision_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Explore.Sched t) (int_range 0 7);
        map
          (fun vs ->
            Explore.Crash
              (List.map
                 (fun (line, evicted) -> { Explore.line; evicted })
                 vs))
          (list_size (int_range 0 5) (pair (int_range 0 40) bool));
      ])

let schedule_arb =
  QCheck.make
    ~print:(fun s -> Explore.schedule_to_string s)
    QCheck.Gen.(list_size (int_range 0 12) decision_gen)

let prop_token_roundtrip =
  QCheck.Test.make ~count:500 ~name:"schedule token round-trips" schedule_arb
    (fun s ->
      Explore.schedule_of_string (Explore.schedule_to_string s) = s)

let test_token_examples () =
  let s =
    [
      Explore.Sched 0;
      Explore.Sched 1;
      Explore.Crash
        [
          { Explore.line = 3; evicted = true };
          { Explore.line = 5; evicted = false };
        ];
    ]
  in
  Alcotest.(check string) "rendering" "t0.t1.c3e,5d" (Explore.schedule_to_string s);
  Alcotest.(check bool)
    "parses back" true
    (Explore.schedule_of_string "t0.t1.c3e,5d" = s);
  (* A crash with no dirty lines renders as a bare "c". *)
  Alcotest.(check string) "empty crash" "t0.c"
    (Explore.schedule_to_string [ Explore.Sched 0; Explore.Crash [] ]);
  Alcotest.check_raises "malformed token rejected"
    (Invalid_argument "Explore.schedule_of_string: bad token \"x9\"")
    (fun () -> ignore (Explore.schedule_of_string "t0.x9"))

(* ------------------- reduction: sound and effective ------------------ *)

(* Random tiny scenarios: [n] threads, each doing 1-2 writes to cells
   drawn from a pool of [ncells].  The check fails on a random subset of
   final states, so both searches must agree not just on counts but on
   whether a violation exists at all. *)
let scenario_arb =
  QCheck.make
    ~print:(fun (n, ncells, ops, bad) ->
      Printf.sprintf "threads=%d cells=%d ops=%s bad=%d" n ncells
        (String.concat ";"
           (List.map
              (fun l -> String.concat "," (List.map string_of_int l))
              ops))
        bad)
    QCheck.Gen.(
      int_range 1 3 >>= fun n ->
      int_range 1 3 >>= fun ncells ->
      list_repeat n (list_size (int_range 1 2) (int_range 0 (ncells - 1)))
      >>= fun ops ->
      int_range 0 7 >>= fun bad -> return (n, ncells, ops, bad))

let explorer_of_scenario ?(reduction = true) (n, ncells, ops, bad) =
  ignore n;
  Explore.make ~reduction
    ~setup:(fun () ->
      let heap, (module M) = with_mem () in
      let cells = Array.init ncells (fun _ -> M.alloc 0) in
      let threads =
        List.mapi
          (fun i writes () ->
            List.iter (fun c -> M.write cells.(c) (i + 1)) writes)
          ops
      in
      let final () =
        Array.fold_left (fun acc c -> (2 * acc) + M.read c) 0 cells
      in
      { Explore.ctx = final; heap; threads })
    ~check:(fun get _heap ~crashed:_ ->
      (* fail when the final state hits a random target *)
      if get () mod 8 = bad then failwith "bad final state")
    ()

let verdict t =
  match Explore.run t with
  | (s : Explore.stats) -> Ok s.Explore.executions
  | exception Explore.Violation _ -> Error `Violation

let prop_reduction_sound =
  QCheck.Test.make ~count:60
    ~name:"reduced search: same verdict, no more executions" scenario_arb
    (fun sc ->
      let reduced = verdict (explorer_of_scenario ~reduction:true sc) in
      let naive = verdict (explorer_of_scenario ~reduction:false sc) in
      match (reduced, naive) with
      | Ok r, Ok n -> r <= n
      | Error `Violation, Error `Violation -> true
      | _ -> false)

let test_reduction_strictly_fewer () =
  (* Two threads, two writes each to thread-private cells: every
     inter-thread pair of steps is independent, so the sleep sets must
     prune — strictly fewer executions, same (passing) verdict. *)
  let make ~reduction =
    Explore.make ~reduction
      ~setup:(fun () ->
        let heap, (module M) = with_mem () in
        let a = M.alloc 0 and b = M.alloc 0 in
        {
          Explore.ctx = ();
          heap;
          threads =
            [
              (fun () ->
                M.write a 1;
                M.write a 2);
              (fun () ->
                M.write b 1;
                M.write b 2);
            ];
        })
      ~check:(fun () _heap ~crashed:_ -> ())
      ()
  in
  let reduced = Explore.run (make ~reduction:true) in
  let naive = Explore.run (make ~reduction:false) in
  Alcotest.(check bool)
    (Printf.sprintf "reduced %d < naive %d" reduced.Explore.executions
       naive.Explore.executions)
    true
    (reduced.Explore.executions < naive.Explore.executions);
  Alcotest.(check bool) "something was pruned" true (reduced.Explore.pruned > 0);
  Alcotest.(check int) "naive prunes nothing" 0 naive.Explore.pruned

(* ------------------------ iterative deepening ------------------------ *)

let count_at ?max_preemptions () =
  (Explore.run
     (Explore.make ~reduction:false ?max_preemptions
        ~setup:(fun () ->
          let heap, (module M) = with_mem () in
          let c = M.alloc 0 in
          {
            Explore.ctx = ();
            heap;
            threads = [ (fun () -> M.write c 1); (fun () -> M.write c 2) ];
          })
        ~check:(fun () _ ~crashed:_ -> ())
        ()))
    .Explore.executions

let test_preemption_bound_boundaries () =
  (* 0 preemptions: threads run to completion in either order => 2.
     Unbounded: all C(4,2) = 6 interleavings of 2x2 steps. *)
  Alcotest.(check int) "bound 0" 2 (count_at ~max_preemptions:0 ());
  Alcotest.(check int) "bound 1" 4 (count_at ~max_preemptions:1 ());
  Alcotest.(check int) "bound 2" 6 (count_at ~max_preemptions:2 ());
  Alcotest.(check int) "unbounded" 6 (count_at ())

(* ------------------------ per-line adversary ------------------------- *)

let crash_explorer ?max_crash_lines ?crash_samples ~adversary ~check () =
  Explore.make ~crashes:true ~adversary ?max_crash_lines ?crash_samples
    ~setup:(fun () ->
      let heap, (module M) = with_mem () in
      let data = M.alloc 0 and committed = M.alloc 0 in
      {
        Explore.ctx = (fun () -> (M.read data, M.read committed));
        heap;
        threads =
          [
            (fun () ->
              M.write data 42;
              M.write committed 1);
          ];
      })
    ~check ()

let test_per_line_enumerates_more () =
  let nop = fun _get _heap ~crashed:_ -> () in
  let per_line = Explore.run (crash_explorer ~adversary:`Per_line ~check:nop ()) in
  let aon =
    Explore.run (crash_explorer ~adversary:`All_or_nothing ~check:nop ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "per-line crash branches %d > all-or-nothing %d"
       per_line.Explore.crash_branches aon.Explore.crash_branches)
    true
    (per_line.Explore.crash_branches > aon.Explore.crash_branches)

let test_per_line_finds_mixed_eviction () =
  (* Unflushed commit marker: data and marker written back-to-back with
     no flushes.  All-or-nothing eviction keeps them consistent — only
     the per-line adversary reaches the state where the marker's line
     survived and the data's line did not. *)
  let check get _heap ~crashed =
    if crashed then begin
      let d, c = get () in
      if c = 1 && d = 0 then failwith "commit marker without data"
    end
  in
  ignore (Explore.run (crash_explorer ~adversary:`All_or_nothing ~check ()));
  match Explore.run (crash_explorer ~adversary:`Per_line ~check ()) with
  | _ -> Alcotest.fail "per-line adversary missed the mixed eviction"
  | exception Explore.Violation { schedule; _ } -> (
      match List.rev schedule with
      | Explore.Crash verdicts :: _ ->
          let evicted =
            List.filter (fun v -> v.Explore.evicted) verdicts
          and dropped =
            List.filter (fun v -> not v.Explore.evicted) verdicts
          in
          Alcotest.(check int) "one line evicted" 1 (List.length evicted);
          Alcotest.(check int) "one line dropped" 1 (List.length dropped)
      | _ -> Alcotest.fail "violating schedule does not end in a crash")

(* ------------------------- coverage telemetry ------------------------ *)

let nop_check = fun _get _heap ~crashed:_ -> ()

let test_telemetry_counts () =
  let s =
    Explore.run (crash_explorer ~adversary:`Per_line ~check:nop_check ())
  in
  Alcotest.(check bool) "branches counted" true (s.Explore.branches > 0);
  Alcotest.(check int)
    "every crash point is enumerated or sampled" s.Explore.crash_points
    (s.Explore.crash_enumerated + s.Explore.crash_sampled);
  Alcotest.(check bool) "crash points reached" true (s.Explore.crash_points > 0);
  Alcotest.(check int)
    "nothing sampled under the default cap" 0 s.Explore.crash_sampled;
  Alcotest.(check bool) "wall clock measured" true (s.Explore.wall_s >= 0.);
  (* [run] resets the counters, so stats are per-run, not cumulative. *)
  let t = crash_explorer ~adversary:`Per_line ~check:nop_check () in
  let a = Explore.run t in
  let b = Explore.run t in
  Alcotest.(check int) "branches are per-run" a.Explore.branches
    b.Explore.branches;
  Alcotest.(check int) "executions are per-run" a.Explore.executions
    b.Explore.executions;
  Alcotest.(check int) "crash points are per-run" a.Explore.crash_points
    b.Explore.crash_points

let test_telemetry_sampling () =
  (* An enumeration cap of 0 forces every non-empty crash point onto the
     sampling path, which the telemetry must report as incomplete
     coverage. *)
  let s =
    Explore.run
      (crash_explorer ~max_crash_lines:0 ~crash_samples:2
         ~adversary:`Per_line ~check:nop_check ())
  in
  Alcotest.(check bool) "cap 0 forces sampling" true
    (s.Explore.crash_sampled > 0);
  Alcotest.(check int)
    "sampled + enumerated still covers every point" s.Explore.crash_points
    (s.Explore.crash_enumerated + s.Explore.crash_sampled)

(* --------------------------- replay/explain -------------------------- *)

let prop_replay_deterministic =
  (* Whatever violation the search finds, replaying its token must
     reproduce the same failure — per-line verdicts included — and
     explain must return the same outcome with a trace. *)
  QCheck.Test.make ~count:40 ~name:"violations replay deterministically"
    QCheck.(int_range 0 7)
    (fun bad ->
      let mk () =
        crash_explorer ~adversary:`Per_line
          ~check:(fun get _heap ~crashed ->
            let d, c = get () in
            if (if crashed then 1 else 0) + d + c mod 8 = bad then
              failwith "flagged")
          ()
      in
      match Explore.run (mk ()) with
      | _ -> true (* no violation at this target: vacuous *)
      | exception Explore.Violation { schedule; _ } -> (
          let token = Explore.schedule_to_string schedule in
          (* replay raises the same violation with the same schedule *)
          (match Explore.replay_schedule (mk ()) schedule with
          | _ -> false
          | exception Explore.Violation { schedule = s'; _ } ->
              Explore.schedule_to_string s' = token)
          &&
          match Explore.explain (mk ()) (Explore.schedule_of_string token) with
          | Explore.Failed _, trace -> trace <> []
          | Explore.Passed _, _ -> false))

let test_explain_passing_schedule () =
  let t =
    Explore.make
      ~setup:(fun () ->
        let heap, (module M) = with_mem () in
        let c = M.alloc 0 in
        { Explore.ctx = (); heap; threads = [ (fun () -> M.write c 1) ] })
      ~check:(fun () _ ~crashed:_ -> ())
      ()
  in
  let sched = [ Explore.Sched 0; Explore.Sched 0 ] in
  Alcotest.(check bool) "completes" true
    (Explore.replay_schedule t sched = `Completed);
  match Explore.explain t sched with
  | Explore.Passed `Completed, trace ->
      Alcotest.(check bool) "trace recorded" true (trace <> [])
  | Explore.Passed `Crashed, _ -> Alcotest.fail "did not crash"
  | Explore.Failed e, _ -> Alcotest.failf "failed: %s" (Printexc.to_string e)

let suite =
  [
    Alcotest.test_case "schedule token examples" `Quick test_token_examples;
    QCheck_alcotest.to_alcotest prop_token_roundtrip;
    QCheck_alcotest.to_alcotest prop_reduction_sound;
    Alcotest.test_case "reduction prunes independent threads" `Quick
      test_reduction_strictly_fewer;
    Alcotest.test_case "preemption-bound boundaries" `Quick
      test_preemption_bound_boundaries;
    Alcotest.test_case "per-line adversary branches more" `Quick
      test_per_line_enumerates_more;
    Alcotest.test_case "per-line finds mixed eviction" `Quick
      test_per_line_finds_mixed_eviction;
    Alcotest.test_case "coverage telemetry invariants" `Quick
      test_telemetry_counts;
    Alcotest.test_case "telemetry flags sampled crash coverage" `Quick
      test_telemetry_sampling;
    QCheck_alcotest.to_alcotest prop_replay_deterministic;
    Alcotest.test_case "explain on a passing schedule" `Quick
      test_explain_passing_schedule;
  ]
