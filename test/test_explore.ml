(** The model checker checking itself: schedule-token round-trips,
    deterministic replay (per-line eviction verdicts and buffer-drain
    decisions included), sleep-set reduction soundness (same verdict as
    the naive search, strictly fewer executions on independent threads),
    iterative deepening boundaries, per-line crash-adversary coverage,
    and the buffered (px86) persistency axis: the drain adversary's
    extra reach, its equivalence with sc under drain-at-every-
    persistence-point programs, and the report schema's v2/v3
    compatibility. *)

open Helpers

let with_mem ?persistency () =
  let heap = Heap.create ?persistency () in
  let (module M) = Sim.memory heap in
  (heap, (module M : Dssq_memory.Memory_intf.S))

(* ------------------------- token round-trip ------------------------- *)

let decision_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun t -> Explore.Sched t) (int_range 0 7);
        map
          (fun (tid, count) -> Explore.Bdrain { tid; count })
          (pair (int_range 0 3) (int_range 1 4));
        map
          (fun vs ->
            Explore.Crash
              (List.map
                 (fun (line, evicted) -> { Explore.line; evicted })
                 vs))
          (list_size (int_range 0 5) (pair (int_range 0 40) bool));
      ])

let schedule_arb =
  QCheck.make
    ~print:(fun s -> Explore.schedule_to_string s)
    QCheck.Gen.(list_size (int_range 0 12) decision_gen)

let prop_token_roundtrip =
  QCheck.Test.make ~count:500 ~name:"schedule token round-trips" schedule_arb
    (fun s ->
      Explore.schedule_of_string (Explore.schedule_to_string s) = s)

let test_token_examples () =
  let s =
    [
      Explore.Sched 0;
      Explore.Sched 1;
      Explore.Crash
        [
          { Explore.line = 3; evicted = true };
          { Explore.line = 5; evicted = false };
        ];
    ]
  in
  Alcotest.(check string) "rendering" "t0.t1.c3e,5d" (Explore.schedule_to_string s);
  Alcotest.(check bool)
    "parses back" true
    (Explore.schedule_of_string "t0.t1.c3e,5d" = s);
  (* A crash with no dirty lines renders as a bare "c". *)
  Alcotest.(check string) "empty crash" "t0.c"
    (Explore.schedule_to_string [ Explore.Sched 0; Explore.Crash [] ]);
  (* A buffer-drain decision: thread 0 writes back its two oldest
     buffered flushes before the crash verdicts apply. *)
  let drained =
    [
      Explore.Sched 0;
      Explore.Sched 1;
      Explore.Bdrain { tid = 0; count = 2 };
      Explore.Crash [ { Explore.line = 1; evicted = false } ];
    ]
  in
  Alcotest.(check string) "drain rendering" "t0.t1.b0:2.c1d"
    (Explore.schedule_to_string drained);
  Alcotest.(check bool)
    "drain parses back" true
    (Explore.schedule_of_string "t0.t1.b0:2.c1d" = drained);
  Alcotest.check_raises "malformed token rejected"
    (Invalid_argument "Explore.schedule_of_string: bad token \"x9\"")
    (fun () -> ignore (Explore.schedule_of_string "t0.x9"));
  List.iter
    (fun tok ->
      Alcotest.check_raises
        (Printf.sprintf "bad drain token %S rejected" tok)
        (Invalid_argument
           (Printf.sprintf "Explore.schedule_of_string: bad token %S" tok))
        (fun () -> ignore (Explore.schedule_of_string ("t0." ^ tok))))
    [ "b0" (* no colon *); "b0:0" (* count < 1 *); "b-1:2" (* negative tid *) ]

(* ------------------- reduction: sound and effective ------------------ *)

(* Random tiny scenarios: [n] threads, each doing 1-2 writes to cells
   drawn from a pool of [ncells].  The check fails on a random subset of
   final states, so both searches must agree not just on counts but on
   whether a violation exists at all. *)
let scenario_arb =
  QCheck.make
    ~print:(fun (n, ncells, ops, bad) ->
      Printf.sprintf "threads=%d cells=%d ops=%s bad=%d" n ncells
        (String.concat ";"
           (List.map
              (fun l -> String.concat "," (List.map string_of_int l))
              ops))
        bad)
    QCheck.Gen.(
      int_range 1 3 >>= fun n ->
      int_range 1 3 >>= fun ncells ->
      list_repeat n (list_size (int_range 1 2) (int_range 0 (ncells - 1)))
      >>= fun ops ->
      int_range 0 7 >>= fun bad -> return (n, ncells, ops, bad))

let explorer_of_scenario ?(reduction = true) (n, ncells, ops, bad) =
  ignore n;
  Explore.make ~reduction
    ~setup:(fun () ->
      let heap, (module M) = with_mem () in
      let cells = Array.init ncells (fun _ -> M.alloc 0) in
      let threads =
        List.mapi
          (fun i writes () ->
            List.iter (fun c -> M.write cells.(c) (i + 1)) writes)
          ops
      in
      let final () =
        Array.fold_left (fun acc c -> (2 * acc) + M.read c) 0 cells
      in
      { Explore.ctx = final; heap; threads })
    ~check:(fun get _heap ~crashed:_ ->
      (* fail when the final state hits a random target *)
      if get () mod 8 = bad then failwith "bad final state")
    ()

let verdict t =
  match Explore.run t with
  | (s : Explore.stats) -> Ok s.Explore.executions
  | exception Explore.Violation _ -> Error `Violation

let prop_reduction_sound =
  QCheck.Test.make ~count:60
    ~name:"reduced search: same verdict, no more executions" scenario_arb
    (fun sc ->
      let reduced = verdict (explorer_of_scenario ~reduction:true sc) in
      let naive = verdict (explorer_of_scenario ~reduction:false sc) in
      match (reduced, naive) with
      | Ok r, Ok n -> r <= n
      | Error `Violation, Error `Violation -> true
      | _ -> false)

let test_reduction_strictly_fewer () =
  (* Two threads, two writes each to thread-private cells: every
     inter-thread pair of steps is independent, so the sleep sets must
     prune — strictly fewer executions, same (passing) verdict. *)
  let make ~reduction =
    Explore.make ~reduction
      ~setup:(fun () ->
        let heap, (module M) = with_mem () in
        let a = M.alloc 0 and b = M.alloc 0 in
        {
          Explore.ctx = ();
          heap;
          threads =
            [
              (fun () ->
                M.write a 1;
                M.write a 2);
              (fun () ->
                M.write b 1;
                M.write b 2);
            ];
        })
      ~check:(fun () _heap ~crashed:_ -> ())
      ()
  in
  let reduced = Explore.run (make ~reduction:true) in
  let naive = Explore.run (make ~reduction:false) in
  Alcotest.(check bool)
    (Printf.sprintf "reduced %d < naive %d" reduced.Explore.executions
       naive.Explore.executions)
    true
    (reduced.Explore.executions < naive.Explore.executions);
  Alcotest.(check bool) "something was pruned" true (reduced.Explore.pruned > 0);
  Alcotest.(check int) "naive prunes nothing" 0 naive.Explore.pruned

(* ------------------------ iterative deepening ------------------------ *)

let count_at ?max_preemptions () =
  (Explore.run
     (Explore.make ~reduction:false ?max_preemptions
        ~setup:(fun () ->
          let heap, (module M) = with_mem () in
          let c = M.alloc 0 in
          {
            Explore.ctx = ();
            heap;
            threads = [ (fun () -> M.write c 1); (fun () -> M.write c 2) ];
          })
        ~check:(fun () _ ~crashed:_ -> ())
        ()))
    .Explore.executions

let test_preemption_bound_boundaries () =
  (* 0 preemptions: threads run to completion in either order => 2.
     Unbounded: all C(4,2) = 6 interleavings of 2x2 steps. *)
  Alcotest.(check int) "bound 0" 2 (count_at ~max_preemptions:0 ());
  Alcotest.(check int) "bound 1" 4 (count_at ~max_preemptions:1 ());
  Alcotest.(check int) "bound 2" 6 (count_at ~max_preemptions:2 ());
  Alcotest.(check int) "unbounded" 6 (count_at ())

(* ------------------------ per-line adversary ------------------------- *)

let crash_explorer ?max_crash_lines ?crash_samples ~adversary ~check () =
  Explore.make ~crashes:true ~adversary ?max_crash_lines ?crash_samples
    ~setup:(fun () ->
      let heap, (module M) = with_mem () in
      let data = M.alloc 0 and committed = M.alloc 0 in
      {
        Explore.ctx = (fun () -> (M.read data, M.read committed));
        heap;
        threads =
          [
            (fun () ->
              M.write data 42;
              M.write committed 1);
          ];
      })
    ~check ()

let test_per_line_enumerates_more () =
  let nop = fun _get _heap ~crashed:_ -> () in
  let per_line = Explore.run (crash_explorer ~adversary:`Per_line ~check:nop ()) in
  let aon =
    Explore.run (crash_explorer ~adversary:`All_or_nothing ~check:nop ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "per-line crash branches %d > all-or-nothing %d"
       per_line.Explore.crash_branches aon.Explore.crash_branches)
    true
    (per_line.Explore.crash_branches > aon.Explore.crash_branches)

let test_per_line_finds_mixed_eviction () =
  (* Unflushed commit marker: data and marker written back-to-back with
     no flushes.  All-or-nothing eviction keeps them consistent — only
     the per-line adversary reaches the state where the marker's line
     survived and the data's line did not. *)
  let check get _heap ~crashed =
    if crashed then begin
      let d, c = get () in
      if c = 1 && d = 0 then failwith "commit marker without data"
    end
  in
  ignore (Explore.run (crash_explorer ~adversary:`All_or_nothing ~check ()));
  match Explore.run (crash_explorer ~adversary:`Per_line ~check ()) with
  | _ -> Alcotest.fail "per-line adversary missed the mixed eviction"
  | exception Explore.Violation { schedule; _ } -> (
      match List.rev schedule with
      | Explore.Crash verdicts :: _ ->
          let evicted =
            List.filter (fun v -> v.Explore.evicted) verdicts
          and dropped =
            List.filter (fun v -> not v.Explore.evicted) verdicts
          in
          Alcotest.(check int) "one line evicted" 1 (List.length evicted);
          Alcotest.(check int) "one line dropped" 1 (List.length dropped)
      | _ -> Alcotest.fail "violating schedule does not end in a crash")

(* ------------------------- coverage telemetry ------------------------ *)

let nop_check = fun _get _heap ~crashed:_ -> ()

let test_telemetry_counts () =
  let s =
    Explore.run (crash_explorer ~adversary:`Per_line ~check:nop_check ())
  in
  Alcotest.(check bool) "branches counted" true (s.Explore.branches > 0);
  Alcotest.(check int)
    "every crash point is enumerated or sampled" s.Explore.crash_points
    (s.Explore.crash_enumerated + s.Explore.crash_sampled);
  Alcotest.(check bool) "crash points reached" true (s.Explore.crash_points > 0);
  Alcotest.(check int)
    "nothing sampled under the default cap" 0 s.Explore.crash_sampled;
  Alcotest.(check bool) "wall clock measured" true (s.Explore.wall_s >= 0.);
  (* [run] resets the counters, so stats are per-run, not cumulative. *)
  let t = crash_explorer ~adversary:`Per_line ~check:nop_check () in
  let a = Explore.run t in
  let b = Explore.run t in
  Alcotest.(check int) "branches are per-run" a.Explore.branches
    b.Explore.branches;
  Alcotest.(check int) "executions are per-run" a.Explore.executions
    b.Explore.executions;
  Alcotest.(check int) "crash points are per-run" a.Explore.crash_points
    b.Explore.crash_points

let test_telemetry_sampling () =
  (* An enumeration cap of 0 forces every non-empty crash point onto the
     sampling path, which the telemetry must report as incomplete
     coverage. *)
  let s =
    Explore.run
      (crash_explorer ~max_crash_lines:0 ~crash_samples:2
         ~adversary:`Per_line ~check:nop_check ())
  in
  Alcotest.(check bool) "cap 0 forces sampling" true
    (s.Explore.crash_sampled > 0);
  Alcotest.(check int)
    "sampled + enumerated still covers every point" s.Explore.crash_points
    (s.Explore.crash_enumerated + s.Explore.crash_sampled)

(* --------------------------- replay/explain -------------------------- *)

let prop_replay_deterministic =
  (* Whatever violation the search finds, replaying its token must
     reproduce the same failure — per-line verdicts included — and
     explain must return the same outcome with a trace. *)
  QCheck.Test.make ~count:40 ~name:"violations replay deterministically"
    QCheck.(int_range 0 7)
    (fun bad ->
      let mk () =
        crash_explorer ~adversary:`Per_line
          ~check:(fun get _heap ~crashed ->
            let d, c = get () in
            if (if crashed then 1 else 0) + d + c mod 8 = bad then
              failwith "flagged")
          ()
      in
      match Explore.run (mk ()) with
      | _ -> true (* no violation at this target: vacuous *)
      | exception Explore.Violation { schedule; _ } -> (
          let token = Explore.schedule_to_string schedule in
          (* replay raises the same violation with the same schedule *)
          (match Explore.replay_schedule (mk ()) schedule with
          | _ -> false
          | exception Explore.Violation { schedule = s'; _ } ->
              Explore.schedule_to_string s' = token)
          &&
          match Explore.explain (mk ()) (Explore.schedule_of_string token) with
          | Explore.Failed _, trace -> trace <> []
          | Explore.Passed _, _ -> false))

(* ----------------- buffered (px86) persistency axis ------------------ *)

let px86 = Heap.Persistency.Px86

(* One thread, flush-ordered commit protocol, no drain: under px86 every
   flush only buffers, so nothing persists except through the crash
   adversary's drain prefixes and evictions of dirty-unbuffered lines. *)
let px86_crash_explorer ?persistency ~check () =
  Explore.make ~crashes:true ~adversary:`Per_line
    ~setup:(fun () ->
      let heap, (module M) = with_mem ?persistency () in
      let data = M.alloc 0 and committed = M.alloc 0 in
      {
        Explore.ctx = (fun () -> (M.read data, M.read committed));
        heap;
        threads =
          [
            (fun () ->
              M.write data 42;
              M.flush data;
              M.write committed 1;
              M.flush committed);
          ];
      })
    ~check ()

let test_px86_buffered_hazard () =
  (* data is flushed before the marker is even written, so under sc the
     commit marker can never persist ahead of its payload.  Under px86
     the flush only buffers: at the crash point after [write committed]
     the data line sits in thread 0's persist buffer while the marker's
     line is dirty-unbuffered — the adversary evicts the marker and
     loses the buffer, persisting a commit without its data. *)
  let check get _heap ~crashed =
    if crashed then begin
      let d, c = get () in
      if c = 1 && d = 0 then failwith "commit marker without data"
    end
  in
  (match Explore.run (px86_crash_explorer ~check ()) with
  | (_ : Explore.stats) -> ()
  | exception Explore.Violation { schedule; _ } ->
      Alcotest.failf "sc flagged the flush-ordered program at %s"
        (Explore.schedule_to_string schedule));
  match Explore.run (px86_crash_explorer ~persistency:px86 ~check ()) with
  | _ -> Alcotest.fail "px86 adversary missed the buffered-flush hazard"
  | exception Explore.Violation { schedule; _ } -> (
      let token = Explore.schedule_to_string schedule in
      match
        Explore.replay_schedule
          (px86_crash_explorer ~persistency:px86 ~check ())
          (Explore.schedule_of_string token)
      with
      | (_ : [ `Completed | `Crashed ]) ->
          Alcotest.failf "token %s did not reproduce" token
      | exception Explore.Violation { schedule = s'; _ } ->
          Alcotest.(check string) "replay follows the token" token
            (Explore.schedule_to_string s'))

let test_px86_drain_decisions_replay () =
  (* Both words persisted: with no drain in the program, the only way
     data and marker both reach persistence under px86 is an adversary
     drain prefix — so the counterexample token must carry a [b0:_]
     event, round-trip through the parser, and replay byte-for-byte. *)
  let check get _heap ~crashed =
    if crashed then begin
      let d, c = get () in
      if d = 42 && c = 1 then failwith "both persisted"
    end
  in
  match Explore.run (px86_crash_explorer ~persistency:px86 ~check ()) with
  | _ -> Alcotest.fail "px86 adversary never drained a buffer prefix"
  | exception Explore.Violation { schedule; _ } -> (
      Alcotest.(check bool) "schedule carries a drain decision" true
        (List.exists
           (function Explore.Bdrain _ -> true | _ -> false)
           schedule);
      let token = Explore.schedule_to_string schedule in
      Alcotest.(check bool) "drain token round-trips" true
        (Explore.schedule_of_string token = schedule);
      match
        Explore.replay_schedule
          (px86_crash_explorer ~persistency:px86 ~check ())
          schedule
      with
      | (_ : [ `Completed | `Crashed ]) ->
          Alcotest.failf "token %s did not reproduce" token
      | exception Explore.Violation { schedule = s'; _ } ->
          Alcotest.(check string) "replay follows the token" token
            (Explore.schedule_to_string s'))

let test_px86_drain_telemetry () =
  let sc = Explore.run (px86_crash_explorer ~check:nop_check ()) in
  let relaxed =
    Explore.run (px86_crash_explorer ~persistency:px86 ~check:nop_check ())
  in
  Alcotest.(check int) "sc has no drain points" 0 sc.Explore.drain_points;
  Alcotest.(check int) "sc has no drain branches" 0 sc.Explore.drain_branches;
  Alcotest.(check bool) "px86 visits drain points" true
    (relaxed.Explore.drain_points > 0);
  Alcotest.(check bool) "px86 branches on drain prefixes" true
    (relaxed.Explore.drain_branches > 0);
  Alcotest.(check bool)
    (Printf.sprintf "px86 crash branches %d > sc %d"
       relaxed.Explore.crash_branches sc.Explore.crash_branches)
    true
    (relaxed.Explore.crash_branches > sc.Explore.crash_branches)

let prop_replay_deterministic_px86 =
  (* Same determinism contract as the sc prop, on the buffered model:
     whatever the drain adversary found, the token — [Bdrain] decisions
     included — reproduces it exactly. *)
  QCheck.Test.make ~count:25 ~name:"px86 violations replay deterministically"
    QCheck.(int_range 0 7)
    (fun bad ->
      let mk () =
        px86_crash_explorer ~persistency:px86
          ~check:(fun get _heap ~crashed ->
            let d, c = get () in
            if (if crashed then 1 else 0) + d + c mod 8 = bad then
              failwith "flagged")
          ()
      in
      match Explore.run (mk ()) with
      | _ -> true (* no violation at this target: vacuous *)
      | exception Explore.Violation { schedule; _ } -> (
          let token = Explore.schedule_to_string schedule in
          match Explore.replay_schedule (mk ()) schedule with
          | _ -> false
          | exception Explore.Violation { schedule = s'; _ } ->
              Explore.schedule_to_string s' = token))

(* Buffered persistency is only weaker inside the window between a flush
   and the next drain.  A program that drains at every persistence point
   — each write immediately flushed and drained — closes every window,
   so the crash adversary must produce exactly the same set of persisted
   states as under sc, crash point by crash point. *)
let crash_states ~persistency prog =
  let states = Hashtbl.create 32 in
  let t =
    Explore.make ~crashes:true ~adversary:`Per_line
      ~setup:(fun () ->
        let heap, (module M) = with_mem ~persistency () in
        let cells = Array.init 2 (fun _ -> M.alloc 0) in
        let threads =
          [
            (fun () ->
              List.iter
                (fun (c, v) ->
                  M.write cells.(c) v;
                  M.flush cells.(c);
                  M.drain ())
                prog);
          ]
        in
        {
          Explore.ctx = (fun () -> Array.to_list (Array.map M.read cells));
          heap;
          threads;
        })
      ~check:(fun get _heap ~crashed ->
        if crashed then Hashtbl.replace states (get ()) ())
      ()
  in
  let (_ : Explore.stats) = Explore.run t in
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) states [])

let prop_px86_drained_equals_sc =
  QCheck.Test.make ~count:30
    ~name:"px86 with drain at every persistence point = sc crash states"
    QCheck.(
      make
        ~print:(fun prog ->
          String.concat ";"
            (List.map (fun (c, v) -> Printf.sprintf "x%d:=%d" c v) prog))
        Gen.(
          list_size (int_range 1 4) (pair (int_range 0 1) (int_range 1 9))))
    (fun prog ->
      crash_states ~persistency:Heap.Persistency.Sc prog
      = crash_states ~persistency:px86 prog)

(* ------------- report schema: v2 still decodes, v3 round-trips -------- *)

module Explore_report = Dssq_checker.Explore_report
module Scenarios = Dssq_checker.Scenarios
module Json = Dssq_obs.Json

(* A verbatim pre-px86 (v2) document: decoding must fill the fields v3
   introduced with their pre-introduction defaults. *)
let v2_fixture =
  {|{ "schema": "dssq-explore-report", "version": 2, "git_rev": "abc1234",
  "params": { "max_preemptions": 2 },
  "cases": [
    { "name": "queue/enq-deq/crash/ls1", "object": "queue",
      "program": "enq-deq", "crashes": true, "line_size": 1, "nthreads": 2,
      "status": "pass", "executions": 100, "pruned": 10,
      "crash_branches": 40, "branches": 200, "sleep_hit_rate": 0.05,
      "crash_points": 30, "crash_enumerated": 30, "crash_sampled": 0,
      "wall_s": 0.5 },
    { "name": "queue/enq-enq/crash/ls8", "object": "queue",
      "program": "enq-enq", "crashes": true, "line_size": 8, "nthreads": 2,
      "status": "fail", "token": "t0.t1.c3e", "error": "not linearizable" }
  ] }|}

let test_report_decodes_v2 () =
  let s = Explore_report.decode_string v2_fixture in
  Alcotest.(check int) "version" 2 s.Explore_report.s_version;
  Alcotest.(check string) "git rev" "abc1234" s.Explore_report.s_git_rev;
  match s.Explore_report.s_cases with
  | [ pass; fail ] ->
      Alcotest.(check string) "status" "pass" pass.Explore_report.s_status;
      Alcotest.(check string) "persistency defaults to sc" "sc"
        pass.Explore_report.s_persistency;
      Alcotest.(check int) "executions" 100 pass.Explore_report.s_executions;
      Alcotest.(check int) "drain points default to 0" 0
        pass.Explore_report.s_drain_points;
      Alcotest.(check int) "drain branches default to 0" 0
        pass.Explore_report.s_drain_branches;
      Alcotest.(check (option string))
        "failing case keeps its token" (Some "t0.t1.c3e")
        fail.Explore_report.s_token
  | cs -> Alcotest.failf "expected two cases, got %d" (List.length cs)

let test_report_v3_roundtrip () =
  let c =
    List.hd
      (Scenarios.cases ~objects:[ "queue" ] ~crash_modes:[ true ]
         ~line_sizes:[ 1 ]
         ~persistency:Heap.Persistency.Px86 ())
  in
  let r =
    {
      Explore_report.xcase = c;
      verdict = Explore_report.run_case c ~reduction:true;
      naive = None;
    }
  in
  let doc =
    Explore_report.encode
      ~params:[ ("persistency", Json.String "px86") ]
      [ r ]
  in
  (* the v3 coverage object groups branch/crash totals by mode *)
  (match Json.member "coverage" doc with
  | Json.Obj [ ("px86", Json.Obj fields) ] ->
      Alcotest.(check bool) "coverage counts drain points" true
        (match List.assoc "drain_points" fields with
        | Json.Int n -> n > 0
        | _ -> false)
  | j -> Alcotest.failf "unexpected coverage object: %s" (Json.to_string j));
  let s = Explore_report.decode_string (Json.to_string doc) in
  Alcotest.(check int) "version" 3 s.Explore_report.s_version;
  match s.Explore_report.s_cases with
  | [ case ] ->
      Alcotest.(check string) "persistency" "px86"
        case.Explore_report.s_persistency;
      Alcotest.(check string) "status" "pass" case.Explore_report.s_status;
      Alcotest.(check bool) "drain points decoded" true
        (case.Explore_report.s_drain_points > 0);
      Alcotest.(check bool) "drain branches decoded" true
        (case.Explore_report.s_drain_branches > 0)
  | cs -> Alcotest.failf "expected one case, got %d" (List.length cs)

(* --------------------------- explain -------------------------------- *)

let test_explain_passing_schedule () =
  let t =
    Explore.make
      ~setup:(fun () ->
        let heap, (module M) = with_mem () in
        let c = M.alloc 0 in
        { Explore.ctx = (); heap; threads = [ (fun () -> M.write c 1) ] })
      ~check:(fun () _ ~crashed:_ -> ())
      ()
  in
  let sched = [ Explore.Sched 0; Explore.Sched 0 ] in
  Alcotest.(check bool) "completes" true
    (Explore.replay_schedule t sched = `Completed);
  match Explore.explain t sched with
  | Explore.Passed `Completed, trace ->
      Alcotest.(check bool) "trace recorded" true (trace <> [])
  | Explore.Passed `Crashed, _ -> Alcotest.fail "did not crash"
  | Explore.Failed e, _ -> Alcotest.failf "failed: %s" (Printexc.to_string e)

let suite =
  [
    Alcotest.test_case "schedule token examples" `Quick test_token_examples;
    QCheck_alcotest.to_alcotest prop_token_roundtrip;
    QCheck_alcotest.to_alcotest prop_reduction_sound;
    Alcotest.test_case "reduction prunes independent threads" `Quick
      test_reduction_strictly_fewer;
    Alcotest.test_case "preemption-bound boundaries" `Quick
      test_preemption_bound_boundaries;
    Alcotest.test_case "per-line adversary branches more" `Quick
      test_per_line_enumerates_more;
    Alcotest.test_case "per-line finds mixed eviction" `Quick
      test_per_line_finds_mixed_eviction;
    Alcotest.test_case "coverage telemetry invariants" `Quick
      test_telemetry_counts;
    Alcotest.test_case "telemetry flags sampled crash coverage" `Quick
      test_telemetry_sampling;
    QCheck_alcotest.to_alcotest prop_replay_deterministic;
    Alcotest.test_case "explain on a passing schedule" `Quick
      test_explain_passing_schedule;
    Alcotest.test_case "px86 finds the buffered-flush hazard" `Quick
      test_px86_buffered_hazard;
    Alcotest.test_case "px86 drain decisions tokenize and replay" `Quick
      test_px86_drain_decisions_replay;
    Alcotest.test_case "px86 drain telemetry" `Quick test_px86_drain_telemetry;
    QCheck_alcotest.to_alcotest prop_replay_deterministic_px86;
    QCheck_alcotest.to_alcotest prop_px86_drained_equals_sc;
    Alcotest.test_case "explore report still decodes v2 documents" `Quick
      test_report_decodes_v2;
    Alcotest.test_case "explore report v3 round-trips" `Quick
      test_report_v3_roundtrip;
  ]
