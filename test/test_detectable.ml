(** The {!Detectable} engine: the register-equivalence QCheck property
    (the engine-backed register must be observationally equivalent to
    the pre-refactor packed-word register on random operation/crash
    schedules, on both backends and at line sizes 1 and 8), plus unit
    suites for the four zoo objects the engine made cheap — swap,
    deque, priority queue, bounded counter — and the words-per-op
    accounting rows they feed. *)

open Helpers
module Reg = Dssq_core.Dss_register
module DI = Dssq_core.Detectable_intf
module Zoo = Dssq_workload.Zoo

(* ------------------- register: engine = packed oracle ------------------ *)

(* One step of a random schedule.  Crashes land between operations —
   every operation ends at a persistence point (drain), so at a
   boundary the two implementations have durably equivalent abstract
   state and must produce identical traces from there on.  (Mid-
   operation crash soundness of each implementation separately is the
   explore corpus's job; equivalence is only claimed at boundaries.) *)
type step =
  | SWrite of int * int  (** base write: tid, value *)
  | SRead of int
  | SDetWrite of int * int  (** prep + exec *)
  | SDetRead of int
  | SPrepWrite of int * int  (** prep only: left pending across steps *)
  | SPrepRead of int
  | SResolve of int
  | SCrash of int  (** crash + recover + per-thread resolve and retry *)

let pp_step = function
  | SWrite (t, v) -> Printf.sprintf "w%d:%d" t v
  | SRead t -> Printf.sprintf "r%d" t
  | SDetWrite (t, v) -> Printf.sprintf "dw%d:%d" t v
  | SDetRead t -> Printf.sprintf "dr%d" t
  | SPrepWrite (t, v) -> Printf.sprintf "pw%d:%d" t v
  | SPrepRead t -> Printf.sprintf "pr%d" t
  | SResolve t -> Printf.sprintf "res%d" t
  | SCrash s -> Printf.sprintf "crash@%d" s

let gen_step =
  QCheck.Gen.(
    let tid = int_range 0 1 in
    let v = int_range 0 999 in
    frequency
      [
        (3, map2 (fun t v -> SWrite (t, v)) tid v);
        (3, map (fun t -> SRead t) tid);
        (3, map2 (fun t v -> SDetWrite (t, v)) tid v);
        (3, map (fun t -> SDetRead t) tid);
        (1, map2 (fun t v -> SPrepWrite (t, v)) tid v);
        (1, map (fun t -> SPrepRead t) tid);
        (2, map (fun t -> SResolve t) tid);
        (2, map (fun s -> SCrash s) (int_range 0 9999));
      ])

let arb_schedule =
  QCheck.make
    ~print:(fun s -> String.concat ";" (List.map pp_step s))
    QCheck.Gen.(list_size (int_range 1 30) gen_step)

(* A register instance packaged with its module, so the interpreter is
   written once for both implementations. *)
type reg_pack = Pack : (module Reg.S with type t = 'a) * 'a -> reg_pack

(* Run [steps] sequentially and return the observation trace: every
   response, every resolve rendering, and the final value. *)
let interp ~crash (Pack ((module R), r)) steps : string list =
  let obs = ref [] in
  let push s = obs := s :: !obs in
  let resolved tid = Format.asprintf "%a" R.pp_resolved (R.resolve r ~tid) in
  List.iter
    (fun step ->
      match step with
      | SWrite (tid, v) -> R.write r ~tid v
      | SRead tid -> push (Printf.sprintf "r=%d" (R.read r ~tid))
      | SDetWrite (tid, v) ->
          R.prep_write r ~tid v;
          R.exec_write r ~tid
      | SDetRead tid ->
          R.prep_read r ~tid;
          push (Printf.sprintf "dr=%d" (R.exec_read r ~tid))
      | SPrepWrite (tid, v) -> R.prep_write r ~tid v
      | SPrepRead tid -> R.prep_read r ~tid
      | SResolve tid -> push (resolved tid)
      | SCrash seed ->
          crash seed;
          R.recover r;
          for tid = 0 to 1 do
            push (resolved tid);
            (* Exactly-once retry of whatever the crash left pending. *)
            match R.resolve r ~tid with
            | R.Write_pending _ -> R.exec_write r ~tid
            | R.Read_pending ->
                push (Printf.sprintf "retry-r=%d" (R.exec_read r ~tid))
            | _ -> ()
          done)
    steps;
  push (Printf.sprintf "final=%d" (R.read r ~tid:0));
  List.rev !obs

(* Build both registers on the given backend and compare traces. *)
let sim_pair ~line_size impl =
  let heap = Heap.create ~line_size () in
  let (module M) = Sim.memory heap in
  let crash seed = Sim.apply_crash heap ~evict_p:0.5 ~seed in
  let pack =
    match impl with
    | `Engine ->
        let module R = Reg.Make (M) in
        Pack ((module R), R.create ~nthreads:2 ())
    | `Packed ->
        let module R = Reg.Packed (M) in
        Pack ((module R), R.create ~nthreads:2 ())
  in
  (pack, crash)

let native_pair impl =
  (* Crashes cannot be exercised natively; a crash step degrades to
     recover + resolve + retry, which must still agree. *)
  let module M = Dssq_memory.Native.Counted () in
  let crash _seed = () in
  let pack =
    match impl with
    | `Engine ->
        let module R = Reg.Make (M) in
        Pack ((module R), R.create ~nthreads:2 ())
    | `Packed ->
        let module R = Reg.Packed (M) in
        Pack ((module R), R.create ~nthreads:2 ())
  in
  (pack, crash)

let equivalence_prop ~name mk =
  QCheck.Test.make ~count:200 ~name arb_schedule (fun steps ->
      let run impl =
        let pack, crash = mk impl in
        interp ~crash pack steps
      in
      run `Engine = run `Packed)

let prop_register_equiv_sim_ls1 =
  equivalence_prop ~name:"engine register = packed register (sim, line size 1)"
    (sim_pair ~line_size:1)

let prop_register_equiv_sim_ls8 =
  equivalence_prop ~name:"engine register = packed register (sim, line size 8)"
    (sim_pair ~line_size:8)

let prop_register_equiv_native =
  equivalence_prop ~name:"engine register = packed register (native)"
    native_pair

(* ------------------------- zoo object units --------------------------- *)

let with_sim f =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  f (module M : Dssq_memory.Memory_intf.S) heap

(* Swap: the displaced value chains, detectable swap resolves with its
   response, prep survives a crash as Pending and retries exactly once. *)
let test_swap_sequential () =
  with_sim (fun (module M) _heap ->
      let module W = Dssq_core.Dss_swap.Make (M) in
      let w = W.create ~init:7 ~nthreads:2 () in
      Alcotest.(check int) "displaced init" 7 (W.swap w ~tid:0 10);
      Alcotest.(check int) "displaced previous" 10 (W.swap w ~tid:1 20);
      Alcotest.(check int) "read" 20 (W.read w ~tid:0);
      W.prep_swap w ~tid:0 30;
      Alcotest.(check int) "detectable swap displaces" 20 (W.exec_swap w ~tid:0);
      match W.resolve w ~tid:0 with
      | DI.Done (Specs.Swap.Swap 30, Specs.Swap.Value 20) -> ()
      | r -> Alcotest.failf "unexpected resolution %a" W.pp_resolved r)

let test_swap_crash_retry () =
  with_sim (fun (module M) heap ->
      let module W = Dssq_core.Dss_swap.Make (M) in
      let w = W.create ~init:1 ~nthreads:2 () in
      W.prep_swap w ~tid:0 5;
      Sim.apply_crash heap ~evict_p:0.5 ~seed:42;
      W.recover w;
      (match W.resolve w ~tid:0 with
      | DI.Pending (Specs.Swap.Swap 5) -> ()
      | r -> Alcotest.failf "expected pending swap, got %a" W.pp_resolved r);
      Alcotest.(check int) "retry displaces init" 1 (W.exec_swap w ~tid:0);
      (match W.resolve w ~tid:0 with
      | DI.Done (Specs.Swap.Swap 5, Specs.Swap.Value 1) -> ()
      | r -> Alcotest.failf "expected done swap, got %a" W.pp_resolved r);
      Alcotest.(check int) "state" 5 (W.peek w))

(* Deque: both ends, empty responses through the read-only path. *)
let test_deque_sequential () =
  with_sim (fun (module M) _heap ->
      let module D = Dssq_core.Dss_deque.Make (M) in
      let d = D.create ~nthreads:2 () in
      Alcotest.(check (option int)) "pop empty" None (D.pop_front d ~tid:0);
      D.push_back d ~tid:0 1;
      D.push_back d ~tid:0 2;
      D.push_front d ~tid:1 0;
      Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (D.to_list d);
      Alcotest.(check (option int)) "pop front" (Some 0) (D.pop_front d ~tid:0);
      Alcotest.(check (option int)) "pop back" (Some 2) (D.pop_back d ~tid:1);
      D.prep_pop_front d ~tid:0;
      (match D.exec d ~tid:0 with
      | Specs.Deque.Value 1 -> ()
      | _ -> Alcotest.fail "detectable pop front");
      match D.resolve d ~tid:0 with
      | DI.Done (Specs.Deque.Pop_front, Specs.Deque.Value 1) -> ()
      | r -> Alcotest.failf "unexpected resolution %a" D.pp_resolved r)

(* Priority queue: extract-min returns the minimum regardless of insert
   order; empty extraction resolves Done Empty. *)
let test_pqueue_sequential () =
  with_sim (fun (module M) _heap ->
      let module P = Dssq_core.Dss_pqueue.Make (M) in
      let p = P.create ~nthreads:2 () in
      List.iter (fun v -> P.insert p ~tid:0 v) [ 5; 1; 3 ];
      Alcotest.(check (option int)) "min" (Some 1) (P.extract_min p ~tid:1);
      P.prep_extract_min p ~tid:0;
      (match P.exec p ~tid:0 with
      | Specs.Pqueue.Value 3 -> ()
      | _ -> Alcotest.fail "detectable extract-min");
      Alcotest.(check (option int)) "next" (Some 5) (P.extract_min p ~tid:0);
      P.prep_extract_min p ~tid:1;
      match P.exec p ~tid:1 with
      | Specs.Pqueue.Empty -> ()
      | _ -> Alcotest.fail "empty extract-min")

(* Bounded counter: saturation at both ends fails without moving the
   state, and failing operations still resolve Done. *)
let test_bcounter_sequential () =
  with_sim (fun (module M) _heap ->
      let module B = Dssq_core.Dss_bcounter.Make (M) in
      let b = B.create ~nthreads:2 () in
      Alcotest.(check bool) "decrement at zero fails" false (B.decr b ~tid:0);
      for _ = 1 to Dssq_core.Dss_bcounter.bound do
        Alcotest.(check bool) "increment" true (B.incr b ~tid:0)
      done;
      Alcotest.(check bool) "increment at bound fails" false (B.incr b ~tid:1);
      Alcotest.(check int) "saturated" Dssq_core.Dss_bcounter.bound
        (B.get b ~tid:0);
      B.prep_incr b ~tid:1;
      (match B.exec b ~tid:1 with
      | Specs.Bcounter.Fail -> ()
      | _ -> Alcotest.fail "saturated detectable increment");
      match B.resolve b ~tid:1 with
      | DI.Done (Specs.Bcounter.Increment, Specs.Bcounter.Fail) -> ()
      | r -> Alcotest.failf "unexpected resolution %a" B.pp_resolved r)

(* ------------------- lincheck: the four new D<T> specs ------------------ *)

(* Hand-written histories against the transformed specifications, the
   same way test_lincheck.ml pins down D<register>: one accepting and
   one rejecting history per new object, with the swap pair exercising
   the crash/resolve vocabulary (swap is the object whose response
   makes re-execution observable). *)

let ev_inv uid tid op = History.Inv { uid; tid; op }
let ev_res uid r = History.Res { uid; r }

let check_lin name expected spec h =
  Alcotest.(check bool) name expected (Lincheck.is_linearizable spec h)

let test_lincheck_swap () =
  let dswap = Dss_spec.make ~nthreads:2 (Specs.Swap.spec ()) in
  let crash_resolve status =
    [
      ev_inv 0 0 (Dss_spec.Prep (Specs.Swap.Swap 5));
      ev_res 0 Dss_spec.Ack;
      ev_inv 1 0 (Dss_spec.Exec (Specs.Swap.Swap 5));
      History.Crash;
      ev_inv 2 0 Dss_spec.Resolve;
      ev_res 2 status;
    ]
  in
  check_lin "crashed swap may be pending" true dswap
    (crash_resolve (Dss_spec.Status (Some (Specs.Swap.Swap 5), None)));
  check_lin "crashed swap may have displaced init" true dswap
    (crash_resolve
       (Dss_spec.Status
          (Some (Specs.Swap.Swap 5), Some (Specs.Swap.Value 0))));
  check_lin "crashed swap cannot invent a displaced value" false dswap
    (crash_resolve
       (Dss_spec.Status
          (Some (Specs.Swap.Swap 5), Some (Specs.Swap.Value 99))));
  (* Two sequential swaps cannot both displace the initial value. *)
  check_lin "swap responses must chain" false dswap
    [
      ev_inv 0 0 (Dss_spec.Base (Specs.Swap.Swap 5));
      ev_res 0 (Dss_spec.Ret (Specs.Swap.Value 0));
      ev_inv 1 1 (Dss_spec.Base (Specs.Swap.Swap 7));
      ev_res 1 (Dss_spec.Ret (Specs.Swap.Value 0));
    ]

let test_lincheck_deque () =
  let ddeque = Dss_spec.make ~nthreads:2 (Specs.Deque.spec ()) in
  let h pop_result =
    [
      ev_inv 0 0 (Dss_spec.Base (Specs.Deque.Push_back 1));
      ev_res 0 (Dss_spec.Ret Specs.Deque.Ok);
      ev_inv 1 1 (Dss_spec.Base Specs.Deque.Pop_front);
      ev_res 1 (Dss_spec.Ret pop_result);
    ]
  in
  check_lin "pop sees the push" true ddeque (h (Specs.Deque.Value 1));
  check_lin "pop cannot miss a completed push" false ddeque
    (h Specs.Deque.Empty)

let test_lincheck_pqueue () =
  let dpq = Dss_spec.make ~nthreads:2 (Specs.Pqueue.spec ()) in
  let h min_result =
    [
      ev_inv 0 0 (Dss_spec.Base (Specs.Pqueue.Insert 5));
      ev_res 0 (Dss_spec.Ret Specs.Pqueue.Ok);
      ev_inv 1 0 (Dss_spec.Base (Specs.Pqueue.Insert 1));
      ev_res 1 (Dss_spec.Ret Specs.Pqueue.Ok);
      ev_inv 2 1 (Dss_spec.Base Specs.Pqueue.Extract_min);
      ev_res 2 (Dss_spec.Ret min_result);
    ]
  in
  check_lin "extract-min returns the minimum" true dpq
    (h (Specs.Pqueue.Value 1));
  check_lin "extract-min cannot return a non-minimum" false dpq
    (h (Specs.Pqueue.Value 5))

let test_lincheck_bcounter () =
  let dbc =
    Dss_spec.make ~nthreads:2
      (Specs.Bcounter.spec ~bound:Dssq_core.Dss_bcounter.bound ())
  in
  let h get_result =
    [
      ev_inv 0 0 (Dss_spec.Base Specs.Bcounter.Increment);
      ev_res 0 (Dss_spec.Ret Specs.Bcounter.Ok);
      ev_inv 1 1 (Dss_spec.Base Specs.Bcounter.Get);
      ev_res 1 (Dss_spec.Ret get_result);
    ]
  in
  check_lin "get sees the increment" true dbc
    (h (Specs.Bcounter.Value 1));
  check_lin "get cannot ignore a completed increment" false dbc
    (h (Specs.Bcounter.Value 0));
  (* A decrement at zero must fail; claiming Ok is unlinearizable. *)
  check_lin "decrement at zero fails" false dbc
    [
      ev_inv 0 0 (Dss_spec.Base Specs.Bcounter.Decrement);
      ev_res 0 (Dss_spec.Ret Specs.Bcounter.Ok);
    ]

(* ----------------------- words-per-op accounting ----------------------- *)

(* Every zoo object produces a meaningful accounting row: operations
   completed, pwrites counted, and at least one announce word per
   thread (the Ben-Baruch et al. floor). *)
let test_zoo_rows () =
  let rows = Zoo.run_all ~pairs:25 () in
  Alcotest.(check (list string)) "all objects accounted" Zoo.objects
    (List.map (fun (r : Zoo.row) -> r.z_object) rows);
  List.iter
    (fun (r : Zoo.row) ->
      Alcotest.(check bool)
        (r.z_object ^ " completed ops") true (r.z_ops > 0);
      Alcotest.(check bool)
        (r.z_object ^ " words/op >= 1") true
        (Zoo.words_per_op r >= 1.0);
      Alcotest.(check bool)
        (r.z_object ^ " announce floor") true
        (r.z_stats.DI.announce_words >= 2))
    rows

(* The zoo report round-trips through the schema-v4 JSON encoding. *)
let test_zoo_report_roundtrip () =
  let rows = Zoo.run_all ~pairs:10 () in
  let report = Zoo.to_report ~pairs:10 rows in
  Alcotest.(check int)
    "schema v4" Dssq_obs.Run_report.schema_version
    report.Dssq_obs.Run_report.version;
  let decoded =
    Dssq_obs.Run_report.of_string (Dssq_obs.Run_report.to_string report)
  in
  Alcotest.(check bool)
    "roundtrip" true
    (Dssq_obs.Run_report.equal report decoded);
  Alcotest.(check bool)
    "footprint metrics present" true
    (List.mem_assoc "zoo.dss-queue.state_words"
       decoded.Dssq_obs.Run_report.metrics)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_register_equiv_sim_ls1;
      prop_register_equiv_sim_ls8;
      prop_register_equiv_native;
    ]
  @ [
      Alcotest.test_case "swap sequential + resolve" `Quick
        test_swap_sequential;
      Alcotest.test_case "swap crash retry exactly-once" `Quick
        test_swap_crash_retry;
      Alcotest.test_case "deque sequential + resolve" `Quick
        test_deque_sequential;
      Alcotest.test_case "pqueue sequential" `Quick test_pqueue_sequential;
      Alcotest.test_case "bcounter saturation" `Quick
        test_bcounter_sequential;
      Alcotest.test_case "lincheck D<swap> histories" `Quick
        test_lincheck_swap;
      Alcotest.test_case "lincheck D<deque> histories" `Quick
        test_lincheck_deque;
      Alcotest.test_case "lincheck D<pqueue> histories" `Quick
        test_lincheck_pqueue;
      Alcotest.test_case "lincheck D<bcounter> histories" `Quick
        test_lincheck_bcounter;
      Alcotest.test_case "zoo accounting rows" `Quick test_zoo_rows;
      Alcotest.test_case "zoo report schema-v4 roundtrip" `Quick
        test_zoo_report_roundtrip;
    ]
