(** Tests for the crash-aware linearizability checker: hand-constructed
    positive and negative histories under strict and recoverable
    linearizability, including the Figure 2 register executions. *)

open Helpers
module Reg = Specs.Register

let reg_spec = Reg.spec ()
let dreg = Dss_spec.make ~nthreads:2 (Reg.spec ())

(* History construction helpers. *)
let ev_inv uid tid op = History.Inv { uid; tid; op }
let ev_res uid r = History.Res { uid; r }

let check_ok ?mode spec h =
  Alcotest.(check bool) "linearizable" true (Lincheck.is_linearizable ?mode spec h)

let check_bad ?mode spec h =
  Alcotest.(check bool) "not linearizable" false
    (Lincheck.is_linearizable ?mode spec h)

let test_empty_history () = check_ok reg_spec []

let test_sequential_ok () =
  check_ok reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      ev_res 0 Reg.Ok;
      ev_inv 1 0 Reg.Read;
      ev_res 1 (Reg.Value 1);
    ]

let test_sequential_bad_value () =
  check_bad reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      ev_res 0 Reg.Ok;
      ev_inv 1 0 Reg.Read;
      ev_res 1 (Reg.Value 2);
    ]

let test_concurrent_reordering_allowed () =
  (* Read overlaps the write: it may see either value. *)
  let h v =
    [
      ev_inv 0 0 (Reg.Write 1);
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value v);
      ev_res 0 Reg.Ok;
    ]
  in
  check_ok reg_spec (h 0);
  check_ok reg_spec (h 1)

let test_realtime_order_enforced () =
  (* Write completes strictly before the read begins: stale read is
     not linearizable. *)
  check_bad reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      ev_res 0 Reg.Ok;
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value 0);
    ]

let test_queue_fifo_violation () =
  let q = Specs.Queue.spec () in
  check_ok q
    [
      ev_inv 0 0 (Specs.Queue.Enqueue 1);
      ev_res 0 Specs.Queue.Ok;
      ev_inv 1 0 (Specs.Queue.Enqueue 2);
      ev_res 1 Specs.Queue.Ok;
      ev_inv 2 1 Specs.Queue.Dequeue;
      ev_res 2 (Specs.Queue.Value 1);
    ];
  check_bad q
    [
      ev_inv 0 0 (Specs.Queue.Enqueue 1);
      ev_res 0 Specs.Queue.Ok;
      ev_inv 1 0 (Specs.Queue.Enqueue 2);
      ev_res 1 Specs.Queue.Ok;
      ev_inv 2 1 Specs.Queue.Dequeue;
      ev_res 2 (Specs.Queue.Value 2);
    ]

(* ------------------- crashes: strict linearizability ------------------- *)

let test_crashed_op_may_drop () =
  (* Write crashes; a later read seeing the old value is fine (op
     dropped), and seeing the new value is fine too (op took effect
     before the crash). *)
  let h v =
    [
      ev_inv 0 0 (Reg.Write 1);
      History.Crash;
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value v);
    ]
  in
  check_ok reg_spec (h 0);
  check_ok reg_spec (h 1)

let test_strict_forbids_late_effect () =
  (* Under strict linearizability a crashed op cannot take effect after
     an operation that began after the crash observed its absence. *)
  check_bad reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      History.Crash;
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value 0);
      ev_inv 2 1 Reg.Read;
      ev_res 2 (Reg.Value 1);
    ]

let test_recoverable_allows_late_effect () =
  (* The same history is fine under recoverable linearizability as long
     as the crashed process has not invoked again: the write may
     linearize between the two reads of the other process. *)
  check_ok ~mode:Lincheck.Recoverable reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      History.Crash;
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value 0);
      ev_inv 2 1 Reg.Read;
      ev_res 2 (Reg.Value 1);
    ]

let test_recoverable_bounded_by_next_invocation () =
  (* Once the crashed process itself invokes again, its crashed op can no
     longer linearize afterwards. *)
  check_bad ~mode:Lincheck.Recoverable reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      History.Crash;
      ev_inv 1 0 Reg.Read;
      ev_res 1 (Reg.Value 0);
      ev_inv 2 0 Reg.Read;
      ev_res 2 (Reg.Value 1);
    ]

let test_durable_unbounded_late_effect () =
  (* Under durable linearizability even the history where the crashed
     process itself invoked again is fine: the crashed write may
     linearize between that process's own later reads. *)
  check_ok ~mode:Lincheck.Durable reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      History.Crash;
      ev_inv 1 0 Reg.Read;
      ev_res 1 (Reg.Value 0);
      ev_inv 2 0 Reg.Read;
      ev_res 2 (Reg.Value 1);
    ];
  (* But real-time order of completed operations still binds. *)
  check_bad ~mode:Lincheck.Durable reg_spec
    [
      ev_inv 0 0 (Reg.Write 1);
      ev_res 0 Reg.Ok;
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value 0);
    ]

(* ------------------- Figure 2, as checked histories ------------------- *)

let dr_prep = Dss_spec.Prep (Reg.Write 1)
let dr_exec = Dss_spec.Exec (Reg.Write 1)

let fig2_history ~crash_after_exec ~resolve_result =
  let pre =
    if crash_after_exec then
      [
        ev_inv 0 0 dr_prep;
        ev_res 0 Dss_spec.Ack;
        ev_inv 1 0 dr_exec;
        History.Crash;
      ]
    else [ ev_inv 0 0 dr_prep; ev_res 0 Dss_spec.Ack; History.Crash ]
  in
  pre @ [ ev_inv 9 0 Dss_spec.Resolve; ev_res 9 resolve_result ]

let test_figure2_b () =
  (* Crash during exec-write(1): resolve returns (write 1, bottom) or
     (write 1, OK); anything else is rejected. *)
  check_ok dreg
    (fig2_history ~crash_after_exec:true
       ~resolve_result:(Dss_spec.Status (Some (Reg.Write 1), None)));
  check_ok dreg
    (fig2_history ~crash_after_exec:true
       ~resolve_result:(Dss_spec.Status (Some (Reg.Write 1), Some Reg.Ok)));
  check_bad dreg
    (fig2_history ~crash_after_exec:true
       ~resolve_result:(Dss_spec.Status (None, None)))

let test_figure2_c () =
  (* Crash after prep completed, before exec: resolve must return
     (write 1, bottom). *)
  check_ok dreg
    (fig2_history ~crash_after_exec:false
       ~resolve_result:(Dss_spec.Status (Some (Reg.Write 1), None)));
  check_bad dreg
    (fig2_history ~crash_after_exec:false
       ~resolve_result:(Dss_spec.Status (Some (Reg.Write 1), Some Reg.Ok)));
  check_bad dreg
    (fig2_history ~crash_after_exec:false
       ~resolve_result:(Dss_spec.Status (None, None)))

let test_figure2_d () =
  (* Crash during prep: resolve returns (bottom,bottom) or (write 1, bottom). *)
  let h r =
    [ ev_inv 0 0 dr_prep; History.Crash; ev_inv 9 0 Dss_spec.Resolve; ev_res 9 r ]
  in
  check_ok dreg (h (Dss_spec.Status (None, None)));
  check_ok dreg (h (Dss_spec.Status (Some (Reg.Write 1), None)));
  check_bad dreg (h (Dss_spec.Status (Some (Reg.Write 1), Some Reg.Ok)))

let test_resolve_not_reordered_with_exec () =
  (* resolve follows a completed exec in real time on the same object:
     it must observe it (the paper, Section 2.2: program order cannot
     invert exec and resolve on one object). *)
  check_bad dreg
    [
      ev_inv 0 0 dr_prep;
      ev_res 0 Dss_spec.Ack;
      ev_inv 1 0 dr_exec;
      ev_res 1 (Dss_spec.Ret Reg.Ok);
      ev_inv 2 0 Dss_spec.Resolve;
      ev_res 2 (Dss_spec.Status (Some (Reg.Write 1), None));
    ]

let test_ill_formed_histories_rejected () =
  Alcotest.check_raises "response without invocation"
    (Invalid_argument "History.calls: response without invocation (uid 5)")
    (fun () -> ignore (History.calls [ ev_res 5 Reg.Ok ]));
  Alcotest.check_raises "pending at end"
    (Invalid_argument "History.calls: operation still pending at end of history")
    (fun () -> ignore (History.calls [ ev_inv 0 0 Reg.Read ]))

(* Randomized agreement: sequential histories generated from the spec are
   always linearizable; corrupting one response makes the checker reject
   (when the corruption is observable). *)
let test_random_sequential_histories () =
  let q = Specs.Queue.spec () in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let state = ref q.Spec.init in
    let events = ref [] in
    let uid = ref 0 in
    for _ = 1 to 10 do
      let op =
        if Random.State.bool rng then Specs.Queue.Enqueue (Random.State.int rng 100)
        else Specs.Queue.Dequeue
      in
      match q.Spec.apply !state ~tid:0 op with
      | Some (s', r) ->
          state := s';
          events := ev_res !uid r :: ev_inv !uid 0 op :: !events;
          incr uid
      | None -> ()
    done;
    check_ok q (List.rev !events)
  done

(* ------------------------ capacity boundary -------------------------- *)

let test_max_operations_boundary () =
  (* The taken-set is a bit mask in one tagged OCaml int, so the cap is
     exactly 62 operations: a 62-op history checks, a 63-op one raises. *)
  let seq n =
    List.concat
      (List.init n (fun i ->
           [ ev_inv i 0 (Reg.Write (i land 0xFF)); ev_res i Reg.Ok ]))
  in
  Alcotest.(check int) "cap is 62" 62 Lincheck.max_operations;
  check_ok reg_spec (seq Lincheck.max_operations);
  Alcotest.check_raises "63 operations rejected"
    (Lincheck.Too_many_operations 63) (fun () ->
      ignore
        (Lincheck.is_linearizable reg_spec (seq (Lincheck.max_operations + 1))))

(* ------------------- durable mode across two crashes ------------------ *)

let test_durable_across_two_crashes () =
  (* A write pending at the first crash linearizes only after a SECOND
     crash: legal under durable linearizability (any later point), but
     not under strict (before its own crash or never). *)
  let h =
    [
      ev_inv 0 0 (Reg.Write 1);
      History.Crash;
      ev_inv 1 1 Reg.Read;
      ev_res 1 (Reg.Value 0);
      History.Crash;
      ev_inv 2 1 Reg.Read;
      ev_res 2 (Reg.Value 1);
    ]
  in
  check_ok ~mode:Lincheck.Durable reg_spec h;
  check_bad ~mode:Lincheck.Strict reg_spec h

let suite =
  [
    Alcotest.test_case "empty history" `Quick test_empty_history;
    Alcotest.test_case "sequential history accepted" `Quick test_sequential_ok;
    Alcotest.test_case "wrong response rejected" `Quick
      test_sequential_bad_value;
    Alcotest.test_case "concurrent reordering allowed" `Quick
      test_concurrent_reordering_allowed;
    Alcotest.test_case "real-time order enforced" `Quick
      test_realtime_order_enforced;
    Alcotest.test_case "queue FIFO violations rejected" `Quick
      test_queue_fifo_violation;
    Alcotest.test_case "crashed op may drop or take effect" `Quick
      test_crashed_op_may_drop;
    Alcotest.test_case "strict: no effect after crash" `Quick
      test_strict_forbids_late_effect;
    Alcotest.test_case "recoverable: late effect allowed" `Quick
      test_recoverable_allows_late_effect;
    Alcotest.test_case "recoverable: bounded by next invocation" `Quick
      test_recoverable_bounded_by_next_invocation;
    Alcotest.test_case "durable: unbounded late effect" `Quick
      test_durable_unbounded_late_effect;
    Alcotest.test_case "figure 2(b): crash during exec" `Quick test_figure2_b;
    Alcotest.test_case "figure 2(c): crash before exec" `Quick test_figure2_c;
    Alcotest.test_case "figure 2(d): crash during prep" `Quick test_figure2_d;
    Alcotest.test_case "resolve not reordered with exec" `Quick
      test_resolve_not_reordered_with_exec;
    Alcotest.test_case "ill-formed histories rejected" `Quick
      test_ill_formed_histories_rejected;
    Alcotest.test_case "random sequential histories accepted" `Quick
      test_random_sequential_histories;
    Alcotest.test_case "62-op boundary: cap checks, 63 raises" `Quick
      test_max_operations_boundary;
    Alcotest.test_case "durable: effect after a second crash" `Quick
      test_durable_across_two_crashes;
  ]
