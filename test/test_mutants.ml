(** Mutation regression: the checker must catch code that is correct
    except for one seeded crash-consistency bug.  Each named mutant of
    {!Dssq_checker.Mutants} is run against the queue crash corpus; the
    test passes only if some case raises a {!Explore.Violation} whose
    payload is {!Oracle.Not_linearizable}, and the violation's schedule
    token replays to the same failure.  The unmutated queue passes the
    identical corpus — the flags are the bugs, not noise. *)

open Helpers
module Scenarios = Dssq_checker.Scenarios
module Mutants = Dssq_checker.Mutants
module Oracle = Dssq_checker.Oracle

let corpus ?(coalesce = false) ?(combine = false) ?persistency ?mutation () =
  Scenarios.cases ~objects:[ "queue" ] ~crash_modes:[ true ]
    ~line_sizes:[ 1; 8 ] ~coalesce ~combine ?persistency ?mutation ()

let test_correct_queue_passes ?coalesce ?combine ?persistency ?mutation
    ?(what = "unmutated") () =
  List.iter
    (fun (c : Scenarios.case) ->
      match c.Scenarios.run ~reduction:true with
      | (_ : Explore.stats) -> ()
      | exception Explore.Violation { schedule; exn } ->
          Alcotest.failf "%s %s flagged at %s: %s" what c.Scenarios.name
            (Explore.schedule_to_string schedule)
            (Printexc.to_string exn))
    (corpus ?coalesce ?combine ?persistency ?mutation ())

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* A mutant counts as caught when the checker flags it as a strict-
   linearizability violation — or, with [structural], as a corrupted
   recovered structure: under px86 a lost persist can first surface as a
   completion claim whose node never made it into the recovered queue,
   which is the same bug caught by the other oracle. *)
let assert_flagged ?(structural = false) ~name = function
  | Oracle.Not_linearizable _ -> ()
  | Failure msg when structural && contains msg "recovered-structure" -> ()
  | e ->
      Alcotest.failf "mutant %s flagged with the wrong exception: %s" name
        (Printexc.to_string e)

let test_mutant ?coalesce ?combine ?persistency ?structural name mutation () =
  let rec hunt = function
    | [] -> Alcotest.failf "mutant %s (%s): no corpus case flagged it" name
              (Mutants.describe mutation)
    | (c : Scenarios.case) :: rest -> (
        match c.Scenarios.run ~reduction:true with
        | (_ : Explore.stats) -> hunt rest
        | exception Explore.Violation { schedule; exn } -> (
            assert_flagged ?structural ~name exn;
            (* the counterexample token is a faithful reproduction
               recipe: replaying it on a fresh scenario fails the same
               way, per-line eviction verdicts included *)
            match c.Scenarios.replay schedule with
            | (_ : [ `Completed | `Crashed ]) ->
                Alcotest.failf "mutant %s: token %s did not reproduce on %s"
                  name
                  (Explore.schedule_to_string schedule)
                  c.Scenarios.name
            | exception Explore.Violation { schedule = schedule'; exn = exn' }
              ->
                assert_flagged ?structural ~name exn';
                Alcotest.(check string)
                  "replay follows the recorded schedule"
                  (Explore.schedule_to_string schedule)
                  (Explore.schedule_to_string schedule')))
  in
  hunt (corpus ?coalesce ?combine ?persistency ~mutation ())

(* Flush coalescing must not change the checker's verdicts: the same
   corpus passes with every flush routed through the persist buffer, and
   a mutant that drops the buffer's drains — so coalesced flushes are
   never written back — is caught.  (Under eager flushing drop-drain is
   a no-op, which is why it gets its own coalesced cases here instead of
   joining the [Mutants.all] loop.) *)
let drop_drain =
  match Mutants.by_name "drop-drain" with
  | Some m -> m
  | None -> assert false

let reorder_persist =
  match Mutants.by_name "reorder-persist" with
  | Some m -> m
  | None -> assert false

let px86 = Dssq_pmem.Heap.Persistency.Px86

(* The relaxed matrix.  Every relaxed mutant weakens only the
   flush-to-drain window, which does not exist under sc — so the sc
   corpus must stay green with the mutation active (no false alarms),
   and only the buffered sweep may catch it.  [reorder-persist]
   (FIFO-order violation inside the buffer) is provably masked in the
   hardened queue — every inter-line persist ordering it could break is
   drain-mediated — so its px86 corpus passing is the standing
   robustness regression, not a missed bug. *)
let relaxed_invisible_under_sc =
  List.map
    (fun (name, mutation) ->
      Alcotest.test_case
        (Printf.sprintf "mutant %s is invisible under sc" name)
        `Quick
        (fun () ->
          test_correct_queue_passes ~mutation
            ~what:(Printf.sprintf "sc-mutated (%s)" name)
            ()))
    (Mutants.relaxed @ [ ("reorder-persist", reorder_persist) ])

let relaxed_caught_under_px86 =
  List.map
    (fun (name, mutation) ->
      Alcotest.test_case
        (Printf.sprintf "mutant %s is caught under px86" name)
        `Quick
        (test_mutant ~persistency:px86 ~structural:true name mutation))
    Mutants.relaxed

(* The flat-combining matrix.  [lost-batch] inverts the engine's
   install-then-epoch ordering, so it is only reachable through the
   combining path: the combining corpus — which swaps in the engine
   objects for this mutant (see {!Scenarios.cases}) — must catch it
   under both persistency models, and the same flag must be invisible
   with combining off (the injection hook is never read by eager
   installs). *)
let lost_batch =
  match Mutants.by_name "lost-batch" with
  | Some m -> m
  | None -> assert false

let combine_suite =
  [
    Alcotest.test_case "unmutated combining queue passes the crash corpus"
      `Quick (fun () ->
        test_correct_queue_passes ~combine:true ~what:"combining" ());
    Alcotest.test_case "px86 combining queue passes the same corpus" `Quick
      (fun () ->
        test_correct_queue_passes ~combine:true ~persistency:px86
          ~what:"px86 combining" ());
    Alcotest.test_case "mutant lost-batch is caught under combining" `Quick
      (test_mutant ~combine:true "lost-batch" lost_batch);
    Alcotest.test_case "mutant lost-batch is caught under combining px86"
      `Quick
      (test_mutant ~combine:true ~persistency:px86 "lost-batch" lost_batch);
    Alcotest.test_case "mutant lost-batch is invisible with combining off"
      `Quick
      (fun () ->
        test_correct_queue_passes ~mutation:lost_batch
          ~what:"eager (lost-batch)" ());
  ]

let suite =
  (Alcotest.test_case "unmutated queue passes the crash corpus" `Quick
     (fun () -> test_correct_queue_passes ())
  :: Alcotest.test_case "coalesced queue passes the same corpus" `Quick
       (fun () -> test_correct_queue_passes ~coalesce:true ())
  :: Alcotest.test_case "px86 queue passes the same corpus" `Quick
       (fun () ->
         test_correct_queue_passes ~persistency:px86 ~what:"px86" ())
  :: Alcotest.test_case "mutant drop-drain is caught under coalescing" `Quick
       (test_mutant ~coalesce:true "drop-drain" drop_drain)
  :: List.map
       (fun (name, mutation) ->
         Alcotest.test_case
           (Printf.sprintf "mutant %s is caught" name)
           `Quick
           (test_mutant name mutation))
       Mutants.all)
  @ relaxed_invisible_under_sc @ relaxed_caught_under_px86 @ combine_suite
  @ [
      Alcotest.test_case
        "mutant reorder-persist stays masked under px86 (drain-mediated)"
        `Quick
        (fun () ->
          test_correct_queue_passes ~persistency:px86 ~mutation:reorder_persist
            ~what:"px86 reorder-persist" ());
    ]
