(** Mutation regression: the checker must catch code that is correct
    except for one seeded crash-consistency bug.  Each named mutant of
    {!Dssq_checker.Mutants} is run against the queue crash corpus; the
    test passes only if some case raises a {!Explore.Violation} whose
    payload is {!Oracle.Not_linearizable}, and the violation's schedule
    token replays to the same failure.  The unmutated queue passes the
    identical corpus — the flags are the bugs, not noise. *)

open Helpers
module Scenarios = Dssq_checker.Scenarios
module Mutants = Dssq_checker.Mutants
module Oracle = Dssq_checker.Oracle

let corpus ?(coalesce = false) ?mutation () =
  Scenarios.cases ~objects:[ "queue" ] ~crash_modes:[ true ]
    ~line_sizes:[ 1; 8 ] ~coalesce ?mutation ()

let test_correct_queue_passes ?coalesce () =
  List.iter
    (fun (c : Scenarios.case) ->
      match c.Scenarios.run ~reduction:true with
      | (_ : Explore.stats) -> ()
      | exception Explore.Violation { schedule; exn } ->
          Alcotest.failf "unmutated %s flagged at %s: %s" c.Scenarios.name
            (Explore.schedule_to_string schedule)
            (Printexc.to_string exn))
    (corpus ?coalesce ())

let assert_not_linearizable ~name = function
  | Oracle.Not_linearizable _ -> ()
  | e ->
      Alcotest.failf "mutant %s flagged with the wrong exception: %s" name
        (Printexc.to_string e)

let test_mutant ?coalesce name mutation () =
  let rec hunt = function
    | [] -> Alcotest.failf "mutant %s (%s): no corpus case flagged it" name
              (Mutants.describe mutation)
    | (c : Scenarios.case) :: rest -> (
        match c.Scenarios.run ~reduction:true with
        | (_ : Explore.stats) -> hunt rest
        | exception Explore.Violation { schedule; exn } -> (
            assert_not_linearizable ~name exn;
            (* the counterexample token is a faithful reproduction
               recipe: replaying it on a fresh scenario fails the same
               way, per-line eviction verdicts included *)
            match c.Scenarios.replay schedule with
            | (_ : [ `Completed | `Crashed ]) ->
                Alcotest.failf "mutant %s: token %s did not reproduce on %s"
                  name
                  (Explore.schedule_to_string schedule)
                  c.Scenarios.name
            | exception Explore.Violation { schedule = schedule'; exn = exn' }
              ->
                assert_not_linearizable ~name exn';
                Alcotest.(check string)
                  "replay follows the recorded schedule"
                  (Explore.schedule_to_string schedule)
                  (Explore.schedule_to_string schedule')))
  in
  hunt (corpus ?coalesce ~mutation ())

(* Flush coalescing must not change the checker's verdicts: the same
   corpus passes with every flush routed through the persist buffer, and
   a mutant that drops the buffer's drains — so coalesced flushes are
   never written back — is caught.  (Under eager flushing drop-drain is
   a no-op, which is why it gets its own coalesced cases here instead of
   joining the [Mutants.all] loop.) *)
let drop_drain =
  match Mutants.by_name "drop-drain" with
  | Some m -> m
  | None -> assert false

let suite =
  Alcotest.test_case "unmutated queue passes the crash corpus" `Quick
    (fun () -> test_correct_queue_passes ())
  :: Alcotest.test_case "coalesced queue passes the same corpus" `Quick
       (fun () -> test_correct_queue_passes ~coalesce:true ())
  :: Alcotest.test_case "mutant drop-drain is caught under coalescing" `Quick
       (test_mutant ~coalesce:true "drop-drain" drop_drain)
  :: List.map
       (fun (name, mutation) ->
         Alcotest.test_case
           (Printf.sprintf "mutant %s is caught" name)
           `Quick
           (test_mutant name mutation))
       Mutants.all
