(** Tests for the observability layer: log-bucketed histograms (QCheck
    properties), the hand-rolled JSON codec, the metrics registry, the
    schema-versioned run report round-trip, and the memory-event
    accounting of the instrumented sim harness. *)

module Histogram = Dssq_obs.Histogram
module Json = Dssq_obs.Json
module Metrics = Dssq_obs.Metrics
module Run_report = Dssq_obs.Run_report
module MI = Dssq_memory.Memory_intf
module Sim_throughput = Dssq_workload.Sim_throughput

(* ------------------------- histogram properties ----------------------- *)

let arb_values =
  QCheck.(list_of_size (Gen.int_range 1 200) (float_range 0.5 1e7))

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let prop_total =
  QCheck.Test.make ~count:200 ~name:"histogram total = number of adds"
    arb_values (fun vs -> Histogram.total (hist_of vs) = List.length vs)

let prop_sum_min_max_exact =
  QCheck.Test.make ~count:200 ~name:"histogram sum/min/max are exact"
    arb_values (fun vs ->
      let h = hist_of vs in
      let sum = List.fold_left ( +. ) 0. vs in
      Float.abs (Histogram.sum h -. sum) <= 1e-6 *. Float.max 1. sum
      && Histogram.min_value h = List.fold_left Float.min infinity vs
      && Histogram.max_value h = List.fold_left Float.max neg_infinity vs)

let prop_quantile_bounds =
  QCheck.Test.make ~count:200 ~name:"quantiles stay within [min, max]"
    QCheck.(pair arb_values (float_range 0. 1.))
    (fun (vs, q) ->
      let h = hist_of vs in
      let v = Histogram.quantile h q in
      Histogram.min_value h <= v && v <= Histogram.max_value h)

let prop_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantiles are monotone in q" arb_values
    (fun vs ->
      let h = hist_of vs in
      Histogram.p50 h <= Histogram.p90 h && Histogram.p90 h <= Histogram.p99 h)

let prop_merge_totals =
  QCheck.Test.make ~count:200 ~name:"merge sums totals and preserves extrema"
    QCheck.(pair arb_values arb_values)
    (fun (a, b) ->
      let m = Histogram.merge (hist_of a) (hist_of b) in
      Histogram.total m = List.length a + List.length b
      && Histogram.min_value m
         = Float.min
             (Histogram.min_value (hist_of a))
             (Histogram.min_value (hist_of b))
      && Histogram.max_value m
         = Float.max
             (Histogram.max_value (hist_of a))
             (Histogram.max_value (hist_of b)))

let prop_histogram_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"histogram JSON round-trip" arb_values
    (fun vs ->
      let h = hist_of vs in
      Histogram.equal h
        (Histogram.of_json (Json.of_string (Json.to_string (Histogram.to_json h)))))

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Histogram.mean h));
  List.iter (Histogram.add h) [ 10.; 20.; 30.; 40. ];
  Alcotest.(check int) "total" 4 (Histogram.total h);
  Alcotest.(check (float 1e-9)) "mean" 25. (Histogram.mean h);
  Alcotest.check_raises "gamma <= 1 rejected"
    (Invalid_argument "Histogram.create: gamma must be > 1") (fun () ->
      ignore (Histogram.create ~gamma:1. ()));
  Alcotest.check_raises "merge gamma mismatch"
    (Invalid_argument "Histogram.merge: gamma mismatch") (fun () ->
      ignore (Histogram.merge h (Histogram.create ~gamma:2. ())))

(* Regression: pp_bars with a non-positive width used to render empty
   bars; the width is now clamped to at least one column. *)
let test_pp_bars_width_clamp () =
  let h = hist_of [ 1.; 10.; 10.; 1000. ] in
  let render w = Format.asprintf "%a" (Histogram.pp_bars ~width:w) h in
  List.iter
    (fun w ->
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' (render w))
      in
      Alcotest.(check bool)
        (Printf.sprintf "width %d still draws every bar" w)
        true
        (lines <> [] && List.for_all (fun l -> String.contains l '#') lines))
    [ 0; -3; 1; 40 ]

(* ------------------------------- JSON --------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("neg", Json.Int (-7));
        ("f", Json.Float 3.25);
        ("tiny", Json.Float 1.2345678901234567e-12);
        ("nan", Json.Float Float.nan);
        ("s", Json.String "with \"quotes\" and \n newline and \xc3\xa9");
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  let expect =
    (* nan encodes as null, everything else round-trips structurally *)
    Json.Obj
      (List.map
         (fun (k, v) -> if k = "nan" then (k, Json.Null) else (k, v))
         (match j with Json.Obj l -> l | _ -> assert false))
  in
  let reparsed = Json.of_string (Json.to_string j) in
  Alcotest.(check bool) "round-trip (indent)" true (reparsed = expect);
  let reparsed = Json.of_string (Json.to_string ~indent:false j) in
  Alcotest.(check bool) "round-trip (compact)" true (reparsed = expect);
  (* Integer-written numbers stay Int; float-written stay Float. *)
  Alcotest.(check bool) "int stays int" true (Json.of_string "17" = Json.Int 17);
  Alcotest.(check bool)
    "float stays float" true
    (Json.of_string "17.5" = Json.Float 17.5)

let prop_json_bool_roundtrip =
  QCheck.Test.make ~count:100 ~name:"to_bool round-trips through the codec"
    QCheck.bool (fun b ->
      Json.to_bool (Json.of_string (Json.to_string (Json.Bool b))) = b)

let arb_keys =
  QCheck.(list_of_size (Gen.int_range 0 6) (string_of_size (Gen.int_range 1 5)))

let prop_json_path =
  QCheck.Test.make ~count:200
    ~name:"path descends nested objects through the codec"
    QCheck.(pair arb_keys small_int)
    (fun (keys, v) ->
      let nested =
        List.fold_right (fun k acc -> Json.Obj [ (k, acc) ]) keys (Json.Int v)
      in
      let reparsed = Json.of_string (Json.to_string nested) in
      Json.to_int (Json.path keys reparsed) = v
      (* one step past the leaf is Null, not an exception *)
      && Json.path (keys @ [ "absent" ]) reparsed = Json.Null)

let test_json_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "truncated object" true (fails "{\"a\": 1");
  Alcotest.(check bool) "bare word" true (fails "flush");
  Alcotest.(check bool) "trailing garbage" true (fails "42 oops");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc")

(* ------------------------------ metrics ------------------------------- *)

let test_metrics () =
  Metrics.reset ();
  let c = Metrics.counter "test.ops" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.get c);
  let g = Metrics.gauge "test.depth" in
  Metrics.set g 17;
  Alcotest.(check int) "gauge" 17 (Metrics.get g);
  Alcotest.(check bool)
    "snapshot contains both" true
    (List.mem ("test.ops", 5) (Metrics.snapshot ())
    && List.mem ("test.depth", 17) (Metrics.snapshot ()));
  Alcotest.(check bool)
    "registration is idempotent" true
    (Metrics.get (Metrics.counter "test.ops") = 5);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"test.ops\" already registered with another kind")
    (fun () -> ignore (Metrics.gauge "test.ops"));
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.get c)

(* Snapshot isolation: a report built from [delta_since] must see only
   its own run's counter increases, even when earlier runs in the same
   process already bumped the registry. *)
let test_metrics_mark_delta () =
  Metrics.reset ();
  let c = Metrics.counter "test.delta.ops" in
  let g = Metrics.gauge "test.delta.depth" in
  Metrics.incr ~by:3 c;
  Metrics.set g 5;
  let marked = Metrics.mark () in
  Metrics.incr ~by:4 c;
  Metrics.set g 9;
  let d = Metrics.delta_since marked in
  Alcotest.(check (option int))
    "counter reports the delta" (Some 4)
    (List.assoc_opt "test.delta.ops" d);
  Alcotest.(check (option int))
    "gauge passes through at its level" (Some 9)
    (List.assoc_opt "test.delta.depth" d);
  let late = Metrics.counter "test.delta.late" in
  Metrics.incr ~by:2 late;
  Alcotest.(check (option int))
    "post-mark registration reports its full value" (Some 2)
    (List.assoc_opt "test.delta.late" (Metrics.delta_since marked));
  Metrics.reset ()

(* ----------------------------- run report ----------------------------- *)

let sample_report () =
  let hist = hist_of [ 120.; 450.; 800.; 1600.; 90. ] in
  let events =
    {
      MI.reads = 10;
      writes = 4;
      cases = 3;
      pwrites = 6;
      flushes = 7;
      elided_flushes = 5;
      coalesced_flushes = 6;
      fences = 2;
      elided_fences = 1;
    }
  in
  let point =
    Run_report.point_of_samples ~x:2
      [
        { Run_report.mops = 1.25; ops = 100; events; latency = Some hist };
        { Run_report.mops = 1.5; ops = 110; events; latency = Some hist };
      ]
  in
  Run_report.make ~git_rev:"deadbeef" ~backend:"sim" ~experiment:"unit-test"
    ~x_label:"threads" ~y_label:"Mops/s"
    ~params:[ ("repeats", "2") ]
    ~metrics:[ ("obs.reports_written", 3) ]
    ~provenance:[ ("line_size", "8"); ("coalesce", "true"); ("threads", "2") ]
    [
      { Run_report.label = "dss-det"; points = [ point ] };
      { Run_report.label = "ms"; points = [] };
    ]

let test_report_roundtrip () =
  let r = sample_report () in
  let r' = Run_report.of_string (Run_report.to_string r) in
  Alcotest.(check bool) "round-trip preserves the report" true
    (Run_report.equal r r');
  (* point_of_samples merged the repeats *)
  let p = List.hd (List.hd r.Run_report.series).Run_report.points in
  Alcotest.(check int) "ops summed" 210 p.Run_report.ops;
  Alcotest.(check int) "events summed" 14 p.Run_report.events.MI.flushes;
  Alcotest.(check int) "histograms merged" 10
    (Histogram.total (Option.get p.Run_report.latency))

let test_report_file_roundtrip () =
  let file = Filename.temp_file "dssq-report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let r = sample_report () in
      Run_report.write file r;
      Alcotest.(check bool) "file round-trip" true
        (Run_report.equal r (Run_report.read file)))

let test_report_rejects_foreign () =
  let r = sample_report () in
  let reject patch =
    let j = Run_report.to_json r in
    let patched =
      Json.Obj
        (List.map
           (fun (k, v) -> match patch k with Some v' -> (k, v') | None -> (k, v))
           (Json.to_obj j))
    in
    match Run_report.of_json patched with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "foreign schema rejected" true
    (reject (function "schema" -> Some (Json.String "other.schema") | _ -> None));
  Alcotest.(check bool) "newer version rejected" true
    (reject (function
      | "version" -> Some (Json.Int (Run_report.schema_version + 1))
      | _ -> None));
  Alcotest.(check bool) "current version accepted" true (not (reject (fun _ -> None)))

(* Older schema versions predate some keys — v1 lacks [elided_flushes]
   (added in v2), v2 lacks [coalesced_flushes] and [elided_fences]
   (added in v3), v3 lacks [pwrites] (added in v4), and everything
   before v5 lacks the top-level [provenance] map.  All must still
   decode: missing event keys read as zero, missing provenance as the
   empty map. *)
let report_as_version version ~without =
  let without = if version < 5 then "provenance" :: without else without in
  let strip j =
    let rec go = function
      | Json.Obj kvs ->
          Json.Obj
            (List.filter_map
               (fun (k, v) ->
                 if List.mem k without then None else Some (k, go v))
               kvs)
      | Json.List l -> Json.List (List.map go l)
      | j -> j
    in
    go j
  in
  Run_report.of_json
    (Json.Obj
       (List.filter_map
          (fun (k, v) ->
            if List.mem k without then None
            else if k = "version" then Some (k, Json.Int version)
            else Some (k, strip v))
          (Json.to_obj (Run_report.to_json (sample_report ())))))

let check_old_version version ~without =
  let r = report_as_version version ~without in
  Alcotest.(check int)
    (Printf.sprintf "v%d version kept" version)
    version r.Run_report.version;
  let p = List.hd (List.hd r.Run_report.series).Run_report.points in
  let read = function
    | "elided_flushes" -> p.Run_report.events.MI.elided_flushes
    | "coalesced_flushes" -> p.Run_report.events.MI.coalesced_flushes
    | "elided_fences" -> p.Run_report.events.MI.elided_fences
    | "pwrites" -> p.Run_report.events.MI.pwrites
    | k -> Alcotest.failf "unexpected stripped key %s" k
  in
  List.iter
    (fun k ->
      Alcotest.(check int) (Printf.sprintf "missing %s reads as 0" k) 0 (read k))
    without;
  Alcotest.(check bool) "pre-v5 provenance reads as empty" true
    (r.Run_report.provenance = []);
  Alcotest.(check int) "other counters intact" 14
    p.Run_report.events.MI.flushes

let test_report_decodes_v1 () =
  check_old_version 1
    ~without:
      [ "elided_flushes"; "coalesced_flushes"; "elided_fences"; "pwrites" ]

let test_report_decodes_v2 () =
  check_old_version 2
    ~without:[ "coalesced_flushes"; "elided_fences"; "pwrites" ]

let test_report_decodes_v3 () = check_old_version 3 ~without:[ "pwrites" ]
let test_report_decodes_v4 () = check_old_version 4 ~without:[]

let test_report_provenance_roundtrip () =
  let r = sample_report () in
  let r' = Run_report.of_string (Run_report.to_string r) in
  Alcotest.(check bool) "v5 provenance survives the codec" true
    (r'.Run_report.provenance = r.Run_report.provenance
    && r'.Run_report.provenance <> [])

(* ----------------------- memory-event accounting ---------------------- *)

(* The observable cost hierarchy the paper is about: the persistent
   detectable queue must flush strictly more per operation than the
   volatile MS queue (which never flushes). *)
let test_flushes_per_op_ordering () =
  let run mk det_pct =
    Sim_throughput.measure_ex ~horizon_ns:50_000. ~instrument:true ~mk ~det_pct
      ~nthreads:2 ()
  in
  let dss = run "dss-queue" 100 in
  let ms = run "ms-queue" 0 in
  let per_op (s : Run_report.sample) =
    float_of_int s.Run_report.events.MI.flushes /. float_of_int s.Run_report.ops
  in
  Alcotest.(check bool) "dss completed ops" true (dss.Run_report.ops > 0);
  Alcotest.(check bool) "ms completed ops" true (ms.Run_report.ops > 0);
  Alcotest.(check bool)
    (Printf.sprintf "dss flushes/op (%.2f) > ms flushes/op (%.2f)" (per_op dss)
       (per_op ms))
    true
    (per_op dss > per_op ms);
  Alcotest.(check bool) "dss CAS measured" true
    (dss.Run_report.events.MI.cases > 0)

let test_instrumented_latency () =
  let s =
    Sim_throughput.measure_ex ~horizon_ns:50_000. ~instrument:true
      ~mk:"dss-queue" ~nthreads:2 ()
  in
  let h = Option.get s.Run_report.latency in
  Alcotest.(check bool) "one latency sample per op" true
    (Histogram.total h = s.Run_report.ops);
  Alcotest.(check bool) "latencies are positive" true (Histogram.min_value h > 0.)

let test_instrumentation_does_not_change_throughput () =
  (* Zero-cost-when-disabled, and in the deterministic model the event
     sequence must be identical either way. *)
  let run instrument =
    (Sim_throughput.measure_ex ~seed:7 ~horizon_ns:50_000. ~instrument
       ~mk:"dss-queue" ~nthreads:3 ())
      .Run_report.mops
  in
  Alcotest.(check (float 1e-12)) "same simulated throughput" (run false)
    (run true)

let test_native_instrumented_smoke () =
  let s =
    Dssq_workload.Native_throughput.measure_ex ~instrument:true ~mk:"dss-queue"
      ~nthreads:2 ~duration:0.05 ()
  in
  Alcotest.(check bool) "ops counted" true (s.Run_report.ops > 0);
  Alcotest.(check bool) "flushes counted" true
    (s.Run_report.events.MI.flushes > 0);
  Alcotest.(check bool) "latency recorded" true
    (Histogram.total (Option.get s.Run_report.latency) > 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_total;
      prop_sum_min_max_exact;
      prop_quantile_bounds;
      prop_quantile_monotone;
      prop_merge_totals;
      prop_histogram_json_roundtrip;
      prop_json_bool_roundtrip;
      prop_json_path;
    ]
  @ [
      Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
      Alcotest.test_case "pp_bars clamps non-positive widths" `Quick
        test_pp_bars_width_clamp;
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json parse errors" `Quick test_json_errors;
      Alcotest.test_case "metrics registry" `Quick test_metrics;
      Alcotest.test_case "metrics mark/delta isolation" `Quick
        test_metrics_mark_delta;
      Alcotest.test_case "run report round-trip" `Quick test_report_roundtrip;
      Alcotest.test_case "run report file round-trip" `Quick
        test_report_file_roundtrip;
      Alcotest.test_case "run report schema guards" `Quick
        test_report_rejects_foreign;
      Alcotest.test_case "run report decodes schema v1" `Quick
        test_report_decodes_v1;
      Alcotest.test_case "run report decodes schema v2" `Quick
        test_report_decodes_v2;
      Alcotest.test_case "run report decodes schema v3" `Quick
        test_report_decodes_v3;
      Alcotest.test_case "run report decodes schema v4" `Quick
        test_report_decodes_v4;
      Alcotest.test_case "run report v5 provenance round-trip" `Quick
        test_report_provenance_roundtrip;
      Alcotest.test_case "flushes/op: dss > ms" `Quick
        test_flushes_per_op_ordering;
      Alcotest.test_case "instrumented sim latency" `Quick
        test_instrumented_latency;
      Alcotest.test_case "instrumentation is transparent" `Quick
        test_instrumentation_does_not_change_throughput;
      Alcotest.test_case "native instrumented smoke" `Quick
        test_native_instrumented_smoke;
    ]
