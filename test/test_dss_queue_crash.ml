(** Crash-recovery tests for the DSS queue: a crash is injected at
    {e every} step of sequential detectable programs (with the cache
    either fully lost or fully evicted, plus a randomized mix), recovery
    runs, the interrupted operation is resolved and — where the
    application wants exactly-once semantics — retried.  Every recorded
    history, including the post-crash [resolve] responses, is checked for
    strict linearizability against [D<queue>]; structural invariants are
    checked after every recovery.  Randomized concurrent crash tests and
    multi-crash scenarios follow. *)

open Helpers

let dq ?(nthreads = 2) ?(capacity = 48) () =
  make_dss_queue ~reclaim:true ~nthreads ~capacity ()

type recovery_style = Centralized | Per_thread

let recover_with style (q : dq) ~nthreads =
  match style with
  | Centralized -> q.recover ()
  | Per_thread ->
      for tid = 0 to nthreads - 1 do
        q.recover_thread ~tid
      done

let post_recovery_checks ?(style = Centralized) (q : dq) =
  match style with
  | Centralized ->
      let violations = q.recovered_violations () in
      if violations <> [] then
        Alcotest.failf "recovery invariants violated: %s"
          (String.concat "; " violations)
  | Per_thread ->
      (* Per-thread recovery deliberately leaves head/tail repair to the
         normal helping mechanisms, so only X consistency is checked
         (through resolve + lincheck by the caller). *)
      ()

(* Drain the queue with recorded non-detectable dequeues so the checker
   validates the final abstract state, not just the resolve responses. *)
let drain_recorded rec_ (q : dq) ~tid =
  let rec go guard =
    if guard > 0 then begin
      let v = ref 0 in
      ignore
        (Recorder.record rec_ ~tid (Dss_spec.Base Specs.Queue.Dequeue)
           (fun () ->
             v := q.dequeue ~tid;
             deq_response !v));
      if !v <> Queue_intf.empty_value then go (guard - 1)
    end
  in
  go 100

(* ---------------------------------------------------------------------- *)
(* Crash at every step: detectable enqueue                                 *)
(* ---------------------------------------------------------------------- *)

let sweep_enqueue ~evict_p ~style () =
  let steps_seen = ref 0 in
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let q = dq () in
    let rec_ = Recorder.create () in
    (* Non-empty start so both list shapes are exercised; recorded so the
       checker knows the abstract state. *)
    Record.enqueue rec_ q ~tid:1 90;
    let thread () =
      Record.prep_enqueue rec_ q ~tid:0 5;
      Record.exec_enqueue rec_ q ~tid:0 5
    in
    let outcome =
      Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ thread ]
    in
    if not outcome.Sim.crashed then begin
      (* Program ran to completion: the sweep covered every step. *)
      Sim.check_thread_errors outcome;
      check_strict ~nthreads:2 (Recorder.history rec_);
      finished := true
    end
    else begin
      Recorder.crash rec_;
      Sim.apply_crash q.heap ~evict_p ~seed:(1000 + !step);
      recover_with style q ~nthreads:2;
      post_recovery_checks ~style q;
      Record.resolve rec_ q ~tid:0;
      (* Exactly-once completion: retry based on the resolution. *)
      (match q.resolve ~tid:0 with
      | Queue_intf.Enq_done 5 -> ()
      | Queue_intf.Enq_pending 5 ->
          Record.exec_enqueue rec_ q ~tid:0 5
      | Queue_intf.Nothing ->
          Record.prep_enqueue rec_ q ~tid:0 5;
          Record.exec_enqueue rec_ q ~tid:0 5
      | r ->
          Alcotest.failf "unexpected resolution after enqueue crash: %s"
            (Format.asprintf "%a" Queue_intf.pp_resolved r));
      let fives = List.filter (( = ) 5) (q.to_list ()) in
      Alcotest.(check int)
        (Printf.sprintf "exactly one 5 after crash at step %d" !step)
        1 (List.length fives);
      drain_recorded rec_ q ~tid:1;
      check_strict ~nthreads:2 (Recorder.history rec_);
      incr steps_seen
    end;
    incr step
  done;
  Alcotest.(check bool) "sweep covered at least 10 crash points" true
    (!steps_seen >= 10)

(* ---------------------------------------------------------------------- *)
(* Crash at every step: detectable dequeue                                 *)
(* ---------------------------------------------------------------------- *)

let sweep_dequeue ~evict_p ~style () =
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let q = dq () in
    let rec_ = Recorder.create () in
    List.iter (fun v -> Record.enqueue rec_ q ~tid:1 v) [ 1; 2; 3 ];
    let thread () =
      Record.prep_dequeue rec_ q ~tid:0;
      Record.exec_dequeue rec_ q ~tid:0
    in
    let outcome =
      Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ thread ]
    in
    if not outcome.Sim.crashed then begin
      Sim.check_thread_errors outcome;
      check_strict ~nthreads:2 (Recorder.history rec_);
      finished := true
    end
    else begin
      Recorder.crash rec_;
      Sim.apply_crash q.heap ~evict_p ~seed:(2000 + !step);
      recover_with style q ~nthreads:2;
      post_recovery_checks ~style q;
      Record.resolve rec_ q ~tid:0;
      (* Retry until the dequeue has happened exactly once. *)
      let dequeued =
        match q.resolve ~tid:0 with
        | Queue_intf.Deq_done v -> v
        | Queue_intf.Deq_pending ->
            let v = ref 0 in
            ignore
              (Recorder.record rec_ ~tid:0 (Dss_spec.Exec Specs.Queue.Dequeue)
                 (fun () ->
                   v := q.exec_dequeue ~tid:0;
                   deq_response !v));
            !v
        | Queue_intf.Nothing ->
            Record.prep_dequeue rec_ q ~tid:0;
            let v = ref 0 in
            ignore
              (Recorder.record rec_ ~tid:0 (Dss_spec.Exec Specs.Queue.Dequeue)
                 (fun () ->
                   v := q.exec_dequeue ~tid:0;
                   deq_response !v));
            !v
        | r ->
            Alcotest.failf "unexpected resolution after dequeue crash: %s"
              (Format.asprintf "%a" Queue_intf.pp_resolved r)
      in
      Alcotest.(check int)
        (Printf.sprintf "dequeued head exactly once (crash step %d)" !step)
        1 dequeued;
      Alcotest.check int_list "remaining values" [ 2; 3 ] (q.to_list ());
      drain_recorded rec_ q ~tid:1;
      check_strict ~nthreads:2 (Recorder.history rec_)
    end;
    incr step
  done

(* ---------------------------------------------------------------------- *)
(* Crash at every step: detectable dequeue on an empty queue               *)
(* ---------------------------------------------------------------------- *)

let sweep_dequeue_empty ~evict_p () =
  let finished = ref false in
  let step = ref 0 in
  while not !finished do
    let q = dq () in
    let rec_ = Recorder.create () in
    let thread () =
      Record.prep_dequeue rec_ q ~tid:0;
      Record.exec_dequeue rec_ q ~tid:0
    in
    let outcome =
      Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ thread ]
    in
    if not outcome.Sim.crashed then finished := true
    else begin
      Recorder.crash rec_;
      Sim.apply_crash q.heap ~evict_p ~seed:(3000 + !step);
      q.recover ();
      Record.resolve rec_ q ~tid:0;
      (match q.resolve ~tid:0 with
      | Queue_intf.Deq_empty | Queue_intf.Deq_pending | Queue_intf.Nothing -> ()
      | r ->
          Alcotest.failf "unexpected resolution on empty queue: %s"
            (Format.asprintf "%a" Queue_intf.pp_resolved r));
      check_strict ~nthreads:2 (Recorder.history rec_)
    end;
    incr step
  done

(* ---------------------------------------------------------------------- *)
(* Randomized concurrent crash tests                                       *)
(* ---------------------------------------------------------------------- *)

let test_concurrent_crash_lincheck () =
  let nthreads = 2 in
  List.iter
    (fun evict_p ->
      for seed = 1 to 12 do
        for crash_step = 1 to 40 do
          if true then begin
            let q = dq ~nthreads ~capacity:64 () in
          let rec_ = Recorder.create () in
          Record.enqueue rec_ q ~tid:0 50;
          let programs =
            [
              (fun () ->
                Record.prep_enqueue rec_ q ~tid:0 60;
                Record.exec_enqueue rec_ q ~tid:0 60);
              (fun () ->
                Record.prep_dequeue rec_ q ~tid:1;
                Record.exec_dequeue rec_ q ~tid:1);
            ]
          in
          let outcome =
            Sim.run q.heap
              ~policy:(Sim.Random_seed seed)
              ~crash:(Sim.Crash_at_step crash_step)
              ~threads:programs
          in
          if outcome.Sim.crashed then begin
            Recorder.crash rec_;
            Sim.apply_crash q.heap ~evict_p ~seed:(seed * 100 + crash_step);
            q.recover ();
            post_recovery_checks q;
            Record.resolve rec_ q ~tid:0;
            Record.resolve rec_ q ~tid:1;
            drain_recorded rec_ q ~tid:0
          end
            else Sim.check_thread_errors outcome;
            check_strict ~nthreads (Recorder.history rec_)
          end
        done
      done)
    [ 0.0; 1.0; 0.5 ]

(* ---------------------------------------------------------------------- *)
(* Multiple crashes and repeated resolution                                 *)
(* ---------------------------------------------------------------------- *)

let test_double_crash () =
  for crash1 = 1 to 12 do
    let q = dq () in
    let rec_ = Recorder.create () in
    let thread () =
      Record.prep_enqueue rec_ q ~tid:0 7;
      Record.exec_enqueue rec_ q ~tid:0 7
    in
    let outcome =
      Sim.run q.heap ~crash:(Sim.Crash_at_step crash1) ~threads:[ thread ]
    in
    if outcome.Sim.crashed then begin
      Recorder.crash rec_;
      Sim.apply_crash q.heap ~evict_p:0.5 ~seed:crash1;
      q.recover ();
      Record.resolve rec_ q ~tid:0;
      (* A second crash before the thread does anything else: resolve
         must answer the same afterwards (it is idempotent and its
         inputs are persistent). *)
      let before = q.resolve ~tid:0 in
      Recorder.crash rec_;
      Sim.apply_crash q.heap ~evict_p:0.0 ~seed:(crash1 + 777);
      q.recover ();
      Record.resolve rec_ q ~tid:0;
      let after = q.resolve ~tid:0 in
      Alcotest.check resolved "resolution stable across second crash" before
        after;
      check_strict ~nthreads:2 (Recorder.history rec_)
    end
  done

let test_recover_idempotent () =
  for crash_step = 1 to 20 do
    let q = dq () in
    List.iter (fun v -> q.enqueue ~tid:1 v) [ 1; 2 ];
    let thread () =
      q.prep_enqueue ~tid:0 9;
      q.exec_enqueue ~tid:0;
      q.prep_dequeue ~tid:0;
      ignore (q.exec_dequeue ~tid:0)
    in
    let outcome =
      Sim.run q.heap ~crash:(Sim.Crash_at_step crash_step) ~threads:[ thread ]
    in
    if outcome.Sim.crashed then begin
      Sim.apply_crash q.heap ~evict_p:0.5 ~seed:crash_step;
      q.recover ();
      let r1 = q.resolve ~tid:0 in
      let l1 = q.to_list () in
      q.recover ();
      Alcotest.check resolved "resolve unchanged by second recovery" r1
        (q.resolve ~tid:0);
      Alcotest.check int_list "contents unchanged by second recovery" l1
        (q.to_list ())
    end
  done

(* ---------------------------------------------------------------------- *)
(* Resource safety across many crash cycles                                *)
(* ---------------------------------------------------------------------- *)

let test_no_pool_exhaustion_across_crashes () =
  (* A small pool must survive many crash/recover/retry cycles: recovery
     rebuilds the free lists, so leaks cannot accumulate beyond the few
     nodes pinned by X references. *)
  let q = dq ~nthreads:1 ~capacity:24 () in
  for round = 1 to 60 do
    let thread () =
      q.prep_enqueue ~tid:0 round;
      q.exec_enqueue ~tid:0;
      q.prep_dequeue ~tid:0;
      ignore (q.exec_dequeue ~tid:0)
    in
    let outcome =
      Sim.run q.heap
        ~crash:(Sim.Crash_at_step (3 + (round mod 25)))
        ~threads:[ thread ]
    in
    if outcome.Sim.crashed then begin
      Sim.apply_crash q.heap ~evict_p:0.3 ~seed:round;
      q.recover ();
      (* Complete the interrupted pair so the queue drains. *)
      (match q.resolve ~tid:0 with
      | Queue_intf.Enq_pending _ ->
          q.exec_enqueue ~tid:0;
          q.prep_dequeue ~tid:0;
          ignore (q.exec_dequeue ~tid:0)
      | Queue_intf.Enq_done _ | Queue_intf.Deq_pending ->
          q.prep_dequeue ~tid:0;
          ignore (q.exec_dequeue ~tid:0)
      | Queue_intf.Nothing ->
          q.prep_enqueue ~tid:0 round;
          q.exec_enqueue ~tid:0;
          q.prep_dequeue ~tid:0;
          ignore (q.exec_dequeue ~tid:0)
      | Queue_intf.Deq_done _ | Queue_intf.Deq_empty -> ())
    end;
    (* Drain anything left over so rounds stay bounded. *)
    while q.dequeue ~tid:0 <> Queue_intf.empty_value do
      ()
    done
  done;
  Alcotest.(check bool) "pool did not run dry" true (q.free_count () > 0)

(* ---------------------------------------------------------------------- *)
(* Exhaustive: every interleaving x every crash point, tiny scenario       *)
(* ---------------------------------------------------------------------- *)

let test_explore_enqueue_crashes () =
  let executions =
    (Explore.run
       (Explore.make ~crashes:true
         ~setup:(fun () ->
           let q = dq ~nthreads:1 ~capacity:16 () in
           q.prep_enqueue ~tid:0 5;
           {
             Explore.ctx = q;
             heap = q.heap;
             threads = [ (fun () -> q.exec_enqueue ~tid:0) ];
           })
         ~check:(fun q _heap ~crashed ->
           if crashed then begin
             q.recover ();
             post_recovery_checks q;
             match q.resolve ~tid:0 with
             | Queue_intf.Enq_done 5 ->
                 Alcotest.check int_list "done => in queue" [ 5 ] (q.to_list ())
             | Queue_intf.Enq_pending 5 ->
                 Alcotest.check int_list "pending => not in queue" []
                   (q.to_list ());
                 q.exec_enqueue ~tid:0;
                 Alcotest.check int_list "retry lands" [ 5 ] (q.to_list ())
             | r ->
                 Alcotest.failf "unexpected resolution: %s"
                   (Format.asprintf "%a" Queue_intf.pp_resolved r)
           end
           else begin
             Alcotest.check resolved "completed" (Queue_intf.Enq_done 5)
                (q.resolve ~tid:0);
              Alcotest.check int_list "in queue" [ 5 ] (q.to_list ())
            end)
          ()))
      .Explore.executions
  in
  Alcotest.(check bool) "explored crash points" true (executions > 10)

let test_explore_dequeue_crashes () =
  ignore
    (Explore.run
       (Explore.make ~crashes:true
          ~setup:(fun () ->
            let q = dq ~nthreads:1 ~capacity:16 () in
            q.enqueue ~tid:0 1;
            q.enqueue ~tid:0 2;
            q.prep_dequeue ~tid:0;
            let out = ref min_int in
            {
              Explore.ctx = (q, out);
              heap = q.heap;
              threads = [ (fun () -> out := q.exec_dequeue ~tid:0) ];
            })
          ~check:(fun (q, out) _heap ~crashed ->
            if crashed then begin
              q.recover ();
              post_recovery_checks q;
              match q.resolve ~tid:0 with
              | Queue_intf.Deq_done 1 ->
                  Alcotest.check int_list "1 consumed" [ 2 ] (q.to_list ())
              | Queue_intf.Deq_pending ->
                  Alcotest.check int_list "nothing consumed" [ 1; 2 ]
                    (q.to_list ());
                  Alcotest.(check int) "retry gets head" 1 (q.exec_dequeue ~tid:0)
              | r ->
                  Alcotest.failf "unexpected resolution: %s"
                    (Format.asprintf "%a" Queue_intf.pp_resolved r)
            end
            else begin
              Alcotest.(check int) "dequeued head" 1 !out;
              Alcotest.check resolved "resolved done" (Queue_intf.Deq_done 1)
                (q.resolve ~tid:0)
            end)
          ()));
  ()

let suite =
  [
    Alcotest.test_case "enqueue sweep, cache lost, centralized" `Quick
      (sweep_enqueue ~evict_p:0.0 ~style:Centralized);
    Alcotest.test_case "enqueue sweep, cache evicted, centralized" `Quick
      (sweep_enqueue ~evict_p:1.0 ~style:Centralized);
    Alcotest.test_case "enqueue sweep, random eviction, centralized" `Quick
      (sweep_enqueue ~evict_p:0.5 ~style:Centralized);
    Alcotest.test_case "enqueue sweep, cache lost, per-thread" `Quick
      (sweep_enqueue ~evict_p:0.0 ~style:Per_thread);
    Alcotest.test_case "enqueue sweep, random eviction, per-thread" `Quick
      (sweep_enqueue ~evict_p:0.5 ~style:Per_thread);
    Alcotest.test_case "dequeue sweep, cache lost" `Quick
      (sweep_dequeue ~evict_p:0.0 ~style:Centralized);
    Alcotest.test_case "dequeue sweep, cache evicted" `Quick
      (sweep_dequeue ~evict_p:1.0 ~style:Centralized);
    Alcotest.test_case "dequeue sweep, random eviction" `Quick
      (sweep_dequeue ~evict_p:0.5 ~style:Centralized);
    Alcotest.test_case "dequeue-empty sweep" `Quick
      (sweep_dequeue_empty ~evict_p:0.5);
    Alcotest.test_case "concurrent crashes strictly linearizable" `Slow
      test_concurrent_crash_lincheck;
    Alcotest.test_case "double crash: stable resolution" `Quick
      test_double_crash;
    Alcotest.test_case "recovery is idempotent" `Quick test_recover_idempotent;
    Alcotest.test_case "no pool exhaustion across crash cycles" `Quick
      test_no_pool_exhaustion_across_crashes;
    Alcotest.test_case "explore: enqueue crash points exhaustively" `Quick
      test_explore_enqueue_crashes;
    Alcotest.test_case "explore: dequeue crash points exhaustively" `Quick
      test_explore_dequeue_crashes;
  ]
