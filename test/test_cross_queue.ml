(** The detectability contract, checked uniformly across EVERY detectable
    queue implementation in the repository (DSS queue, log queue, both
    CASWithEffect variants): the same crash-sweep, exactly-once and
    strict-linearizability scenarios, parameterized by implementation.
    What Theorem 1 claims for the DSS queue should hold — and does — for
    the baselines too; only the costs differ. *)

open Helpers

let kinds =
  [
    ("dss", fun () -> make_dss_queue ~nthreads:2 ~capacity:64 ());
    ("log", fun () -> make_log_queue ~nthreads:2 ~capacity:64 ());
    ("fast-caswe", fun () -> make_caswe_queue ~variant:`Fast ~nthreads:2 ~capacity:64 ());
    ("gen-caswe", fun () -> make_caswe_queue ~variant:`General ~nthreads:2 ~capacity:64 ());
  ]

let for_kinds f () = List.iter (fun (name, mk) -> f name mk) kinds

(* Crash at every step of a detectable enqueue; resolve; retry to
   exactly-once; validate the final state through the checker. *)
let test_enqueue_sweep =
  for_kinds (fun name mk ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let q = mk () in
        let rec_ = Recorder.create () in
        Record.enqueue rec_ q ~tid:1 90;
        let t () =
          Record.prep_enqueue rec_ q ~tid:0 5;
          Record.exec_enqueue rec_ q ~tid:0 5
        in
        let outcome =
          Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then begin
          Sim.check_thread_errors outcome;
          finished := true
        end
        else begin
          Recorder.crash rec_;
          Sim.apply_crash q.heap ~evict_p:0.5 ~seed:(100_000 + !step);
          q.recover ();
          Record.resolve rec_ q ~tid:0;
          (match q.resolve ~tid:0 with
          | Queue_intf.Enq_done 5 -> ()
          | Queue_intf.Enq_pending 5 -> Record.exec_enqueue rec_ q ~tid:0 5
          | Queue_intf.Nothing ->
              Record.prep_enqueue rec_ q ~tid:0 5;
              Record.exec_enqueue rec_ q ~tid:0 5
          | r ->
              Alcotest.failf "%s: unexpected resolution at step %d: %s" name
                !step
                (Format.asprintf "%a" Queue_intf.pp_resolved r));
          let fives = List.filter (( = ) 5) (q.to_list ()) in
          Alcotest.(check int)
            (Printf.sprintf "%s: exactly one 5 (crash step %d)" name !step)
            1 (List.length fives);
          (* Validate final abstract state via recorded drain. *)
          let rec drain guard =
            if guard > 0 then begin
              let v = ref 0 in
              ignore
                (Recorder.record rec_ ~tid:1 (Dss_spec.Base Specs.Queue.Dequeue)
                   (fun () ->
                     v := q.dequeue ~tid:1;
                     deq_response !v));
              if !v <> Queue_intf.empty_value then drain (guard - 1)
            end
          in
          drain 20;
          check_strict ~nthreads:2 (Recorder.history rec_)
        end;
        incr step
      done)

(* Crash at every step of a detectable dequeue; exactly-once. *)
let test_dequeue_sweep =
  for_kinds (fun name mk ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let q = mk () in
        List.iter (fun v -> q.enqueue ~tid:1 v) [ 1; 2; 3 ];
        let t () =
          q.prep_dequeue ~tid:0;
          ignore (q.exec_dequeue ~tid:0)
        in
        let outcome =
          Sim.run q.heap ~crash:(Sim.Crash_at_step !step) ~threads:[ t ]
        in
        if not outcome.Sim.crashed then finished := true
        else begin
          Sim.apply_crash q.heap ~evict_p:0.5 ~seed:(200_000 + !step);
          q.recover ();
          let dequeued =
            match q.resolve ~tid:0 with
            | Queue_intf.Deq_done v -> v
            | Queue_intf.Deq_pending -> q.exec_dequeue ~tid:0
            | Queue_intf.Nothing ->
                q.prep_dequeue ~tid:0;
                q.exec_dequeue ~tid:0
            | r ->
                Alcotest.failf "%s: unexpected resolution: %s" name
                  (Format.asprintf "%a" Queue_intf.pp_resolved r)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: head dequeued exactly once (step %d)" name !step)
            1 dequeued;
          Alcotest.check int_list
            (Printf.sprintf "%s: remaining (step %d)" name !step)
            [ 2; 3 ] (q.to_list ())
        end;
        incr step
      done)

(* Randomized concurrent crashes, strict linearizability. *)
let test_concurrent_crash_lincheck =
  for_kinds (fun name mk ->
      for seed = 1 to 6 do
        for crash_step = 5 to 60 do
          if crash_step mod 2 = seed mod 2 then begin
            let q = mk () in
            let rec_ = Recorder.create () in
            Record.enqueue rec_ q ~tid:0 50;
            let programs =
              [
                (fun () ->
                  Record.prep_enqueue rec_ q ~tid:0 60;
                  Record.exec_enqueue rec_ q ~tid:0 60);
                (fun () ->
                  Record.prep_dequeue rec_ q ~tid:1;
                  Record.exec_dequeue rec_ q ~tid:1);
              ]
            in
            let outcome =
              Sim.run q.heap
                ~policy:(Sim.Random_seed seed)
                ~crash:(Sim.Crash_at_step crash_step)
                ~threads:programs
            in
            if outcome.Sim.crashed then begin
              Recorder.crash rec_;
              Sim.apply_crash q.heap
                ~evict_p:(float_of_int (crash_step mod 3) /. 2.)
                ~seed:(seed + crash_step);
              q.recover ();
              Record.resolve rec_ q ~tid:0;
              Record.resolve rec_ q ~tid:1;
              let rec drain guard =
                if guard > 0 then begin
                  let v = ref 0 in
                  ignore
                    (Recorder.record rec_ ~tid:0
                       (Dss_spec.Base Specs.Queue.Dequeue) (fun () ->
                         v := q.dequeue ~tid:0;
                         deq_response !v));
                  if !v <> Queue_intf.empty_value then drain (guard - 1)
                end
              in
              drain 20
            end
            else Sim.check_thread_errors outcome;
            (match
               Lincheck.check ~mode:Lincheck.Strict (queue_spec ~nthreads:2)
                 (Recorder.history rec_)
             with
            | Lincheck.Linearizable _ -> ()
            | Lincheck.Not_linearizable _ ->
                Alcotest.failf "%s: seed %d crash %d not strictly linearizable"
                  name seed crash_step)
          end
        done
      done)

let suite =
  [
    Alcotest.test_case "enqueue crash sweep (all detectable queues)" `Quick
      test_enqueue_sweep;
    Alcotest.test_case "dequeue crash sweep (all detectable queues)" `Quick
      test_dequeue_sweep;
    Alcotest.test_case "concurrent crashes (all detectable queues)" `Slow
      test_concurrent_crash_lincheck;
  ]
