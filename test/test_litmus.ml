(** Litmus tests pinning down the simulated memory model: sequential
    consistency, as on the paper's testbed (C++ seq_cst atomics,
    Section 4).  Each test enumerates ALL interleavings with the
    explorer, so "the forbidden outcome never occurs" is exhaustive, not
    sampled. *)

open Helpers

(* SB (store buffering): with SC, (r0, r1) = (0, 0) is forbidden. *)
let test_store_buffering () =
  let seen_00 = ref false in
  ignore
    (Explore.run
       (Explore.make
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let x = M.alloc 0 and y = M.alloc 0 in
            let r0 = ref (-1) and r1 = ref (-1) in
            {
              Explore.ctx = (r0, r1);
              heap;
              threads =
                [
                  (fun () ->
                    M.write x 1;
                    r0 := M.read y);
                  (fun () ->
                    M.write y 1;
                    r1 := M.read x);
                ];
            })
          ~check:(fun (r0, r1) _ ~crashed:_ ->
            if !r0 = 0 && !r1 = 0 then seen_00 := true)
          ()));
  Alcotest.(check bool) "SB forbidden outcome (0,0) never occurs" false !seen_00

(* MP (message passing): if the reader sees the flag, it sees the data. *)
let test_message_passing () =
  ignore
    (Explore.run
       (Explore.make
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let data = M.alloc 0 and flag = M.alloc 0 in
            let seen = ref (-1) in
            {
              Explore.ctx = seen;
              heap;
              threads =
                [
                  (fun () ->
                    M.write data 42;
                    M.write flag 1);
                  (fun () ->
                    if M.read flag = 1 then seen := M.read data);
                ];
            })
          ~check:(fun seen _ ~crashed:_ ->
            if !seen <> -1 then
              Alcotest.(check int) "flag implies data" 42 !seen)
          ()));
  ()

(* CoRR (coherence of read-read): two reads of one location by the same
   thread never observe new-then-old. *)
let test_coherence_rr () =
  ignore
    (Explore.run
       (Explore.make
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let x = M.alloc 0 in
            let a = ref (-1) and b = ref (-1) in
            {
              Explore.ctx = (a, b);
              heap;
              threads =
                [
                  (fun () -> M.write x 1);
                  (fun () ->
                    a := M.read x;
                    b := M.read x);
                ];
            })
          ~check:(fun (a, b) _ ~crashed:_ ->
            Alcotest.(check bool) "no new-then-old" false (!a = 1 && !b = 0))
          ()));
  ()

(* IRIW (independent reads of independent writes): with SC the two
   readers never disagree on the order of the two writes. *)
let test_iriw () =
  ignore
    (Explore.run
       (Explore.make ~max_preemptions:3
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let x = M.alloc 0 and y = M.alloc 0 in
            let r = Array.make 4 (-1) in
            {
              Explore.ctx = r;
              heap;
              threads =
                [
                  (fun () -> M.write x 1);
                  (fun () -> M.write y 1);
                  (fun () ->
                    r.(0) <- M.read x;
                    r.(1) <- M.read y);
                  (fun () ->
                    r.(2) <- M.read y;
                    r.(3) <- M.read x);
                ];
            })
          ~check:(fun r _ ~crashed:_ ->
            Alcotest.(check bool) "readers agree on write order" false
              (r.(0) = 1 && r.(1) = 0 && r.(2) = 1 && r.(3) = 0))
          ()));
  ()

(* Persistence litmus: the "flush data before writing the commit marker"
   idiom — after ANY crash (with or without eviction of the dirty
   lines), a persisted commit marker implies persisted data.  After a
   crash, volatile = persisted, so plain reads inspect the survivor
   state. *)
let test_persist_ordering () =
  ignore
    (Explore.run
       (Explore.make ~crashes:true
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let data = M.alloc 0 and committed = M.alloc 0 in
            {
              Explore.ctx = (fun () -> (M.read data, M.read committed));
              heap;
              threads =
                [
                  (fun () ->
                    M.write data 42;
                    M.flush data;
                    (* commit marker only after the data persisted *)
                    M.write committed 1;
                    M.flush committed);
                ];
            })
          ~check:(fun get _heap ~crashed ->
            if crashed then begin
              let d, c = get () in
              if c = 1 then
                Alcotest.(check int) "commit implies data" 42 d
            end)
          ()));
  ()

(* ---------------------------------------------------------------------- *)
(* The DSS litmus corpus: every ready-made scenario of                      *)
(* Dssq_checker.Scenarios — all four objects (queue, stack, register,      *)
(* hash map), 2-3 threads, with and without crash injection, persist-line  *)
(* sizes 1 and 8 — model-checked end to end with Lincheck as the oracle.   *)
(* ---------------------------------------------------------------------- *)

module Scenarios = Dssq_checker.Scenarios

let corpus_case (c : Scenarios.case) () =
  match c.Scenarios.run ~reduction:true with
  | (stats : Explore.stats) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s explored something (%d executions)"
           c.Scenarios.name stats.Explore.executions)
        true
        (stats.Explore.executions > 0);
      if c.Scenarios.crashes then
        Alcotest.(check bool)
          (Printf.sprintf "%s explored crash branches" c.Scenarios.name)
          true
          (stats.Explore.crash_branches > 0)
  | exception Explore.Violation { schedule; exn } ->
      Alcotest.failf "%s not linearizable at %s: %s" c.Scenarios.name
        (Explore.schedule_to_string schedule)
        (Printexc.to_string exn)

let corpus_suite =
  List.map
    (fun (c : Scenarios.case) ->
      Alcotest.test_case c.Scenarios.name `Quick (corpus_case c))
    (Scenarios.cases ())

(* Allocation-window litmus under buffered persistency: crashes landing
   mid-alloc / mid-link while the enqueue's flushes still sit in the
   persist buffer.  Every enumerated crash execution routes through the
   system-level reattach, which raises if the post-recovery audit finds
   a leaked node — so a clean run IS the zero-leak assertion, over every
   drain prefix and eviction verdict the px86 adversary can produce. *)
let px86_alloc_window_suite =
  List.filter_map
    (fun (c : Scenarios.case) ->
      match c.Scenarios.prog with
      | "mid-alloc" | "mid-link" ->
          Some
            (Alcotest.test_case c.Scenarios.name `Quick (fun () ->
                 match c.Scenarios.run ~reduction:true with
                 | (stats : Explore.stats) ->
                     Alcotest.(check bool)
                       (Printf.sprintf "%s branched on drain prefixes"
                          c.Scenarios.name)
                       true
                       (stats.Explore.drain_branches > 0)
                 | exception Explore.Violation { schedule; exn } ->
                     Alcotest.failf "%s flagged at %s: %s" c.Scenarios.name
                       (Explore.schedule_to_string schedule)
                       (Printexc.to_string exn)))
      | _ -> None)
    (Scenarios.cases ~objects:[ "queue" ] ~crash_modes:[ true ]
       ~line_sizes:[ 1; 8 ]
       ~persistency:Heap.Persistency.Px86 ())

let suite =
  corpus_suite @ px86_alloc_window_suite
  @ [
    Alcotest.test_case "SB: store buffering forbidden" `Quick
      test_store_buffering;
    Alcotest.test_case "MP: message passing" `Quick test_message_passing;
    Alcotest.test_case "CoRR: read-read coherence" `Quick test_coherence_rr;
    Alcotest.test_case "IRIW: readers agree" `Quick test_iriw;
    Alcotest.test_case "persist ordering: commit implies data" `Quick
      test_persist_ordering;
  ]
