(** Deeper coverage scenarios that cut across modules:
    - the universal construction under concurrent crashes, checked
      against [D<counter>] with the linearizability checker;
    - the DSS queue's decentralized recovery running {e concurrently}
      with other threads' recovery and normal operations (the Section
      3.3 claim);
    - exhaustive exploration of a PMwCAS race with crash injection. *)

open Helpers
module Cnt = Specs.Counter

(* ------------------ universal construction, crashes ------------------ *)

let test_universal_concurrent_crash_lincheck () =
  let spec = Dss_spec.make ~nthreads:2 (Cnt.spec ()) in
  for seed = 1 to 10 do
    for crash_step = 3 to 48 do
      if (crash_step + seed) mod 4 = 0 then begin
        let heap = Heap.create () in
        let (module M) = Sim.memory heap in
        let module U = Dssq_universal.Universal.Make (M) in
        let u = U.create ~nthreads:2 ~capacity:128 (Cnt.spec ()) in
        let rec_ = Recorder.create () in
        let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
        let prog ~tid () =
          record ~tid (Dss_spec.Prep Cnt.Increment) (fun () ->
              U.prep u ~tid Cnt.Increment;
              Dss_spec.Ack);
          record ~tid (Dss_spec.Exec Cnt.Increment) (fun () ->
              match U.exec u ~tid Cnt.Increment with
              | Some r -> Dss_spec.Ret r
              | None -> Dss_spec.Ret Cnt.Ok (* unreachable: prep precedes *))
        in
        let outcome =
          Sim.run heap
            ~policy:(Sim.Random_seed seed)
            ~crash:(Sim.Crash_at_step crash_step)
            ~threads:[ prog ~tid:0; prog ~tid:1 ]
        in
        if outcome.Sim.crashed then begin
          Recorder.crash rec_;
          Sim.apply_crash heap ~evict_p:(float_of_int (seed mod 3) /. 2.) ~seed;
          record ~tid:0 Dss_spec.Resolve (fun () ->
              let a, r = U.resolve u ~tid:0 in
              Dss_spec.Status (a, r));
          record ~tid:1 Dss_spec.Resolve (fun () ->
              let a, r = U.resolve u ~tid:1 in
              Dss_spec.Status (a, r))
        end;
        (* Observe the final count so the checker pins the state. *)
        record ~tid:0 (Dss_spec.Base Cnt.Get) (fun () ->
            match U.apply u ~tid:0 Cnt.Get with
            | Some r -> Dss_spec.Ret r
            | None -> Dss_spec.Ret (Cnt.Value (-1)));
        match
          Lincheck.check ~mode:Lincheck.Strict spec (Recorder.history rec_)
        with
        | Lincheck.Linearizable _ -> ()
        | Lincheck.Not_linearizable _ ->
            Alcotest.failf "universal: seed %d crash %d not linearizable" seed
              crash_step
      end
    done
  done

(* ------------- decentralized recovery, truly concurrent -------------- *)

let test_decentralized_recovery_concurrent () =
  (* Crash a two-thread detectable workload, then run BOTH threads'
     recovery + resolution + retry + further operations concurrently in
     a second simulated phase — no centralized recovery at all
     (Section 3.3: "allow threads to recover independently...").  The
     final state must conserve values exactly once. *)
  for seed = 1 to 10 do
    for crash_step = 5 to 50 do
      if (crash_step + seed) mod 5 = 0 then begin
        let q = make_dss_queue ~reclaim:true ~nthreads:2 ~capacity:64 () in
        q.enqueue ~tid:0 90;
        let t0 () =
          q.prep_enqueue ~tid:0 10;
          q.exec_enqueue ~tid:0
        in
        let t1 () =
          q.prep_enqueue ~tid:1 20;
          q.exec_enqueue ~tid:1
        in
        let outcome =
          Sim.run q.heap
            ~policy:(Sim.Random_seed seed)
            ~crash:(Sim.Crash_at_step crash_step) ~threads:[ t0; t1 ]
        in
        if outcome.Sim.crashed then begin
          Sim.apply_crash q.heap ~evict_p:0.5 ~seed:(seed * 77 + crash_step);
          (* Process restart: volatile runtime state is gone... *)
          q.reset_volatile ();
          (* ...and each thread recovers for itself, concurrently, then
             completes its own operation per its own resolution and
             moves on to another operation. *)
          let recov ~tid v () =
            q.recover_thread ~tid;
            (match q.resolve ~tid with
            | Queue_intf.Enq_done _ -> ()
            | Queue_intf.Enq_pending _ -> q.exec_enqueue ~tid
            | Queue_intf.Nothing ->
                q.prep_enqueue ~tid v;
                q.exec_enqueue ~tid
            | _ -> ());
            q.prep_enqueue ~tid (v + 1);
            q.exec_enqueue ~tid
          in
          let outcome2 =
            Sim.run q.heap
              ~policy:(Sim.Random_seed (seed + 1000))
              ~threads:[ recov ~tid:0 10; recov ~tid:1 20 ]
          in
          Sim.check_thread_errors outcome2;
          let contents = List.sort compare (q.to_list ()) in
          Alcotest.check int_list
            (Printf.sprintf "exactly-once, concurrent recovery (s%d c%d)" seed
               crash_step)
            [ 10; 11; 20; 21; 90 ] contents
        end
      end
    done
  done

(* --------------- pmwcas: exhaustive race with crashes ---------------- *)

let test_pmwcas_explore_race_with_crashes () =
  (* Two conflicting single-word pmwcas operations, every preemption-
     bounded interleaving, every crash point with both cache outcomes:
     after recovery the word holds one of the three legal values and
     never a descriptor. *)
  ignore
    (Explore.run
       (Explore.make ~crashes:true ~max_preemptions:1
          ~setup:(fun () ->
            let heap = Heap.create () in
            let (module M) = Sim.memory heap in
            let module P = Dssq_pmwcas.Pmwcas.Make (M) in
            let p = P.create ~nwords:2 ~nthreads:2 () in
            let a = P.alloc p 0 in
            let read_after () = P.read p ~tid:0 a in
            let recover () = P.recover p in
            {
              Explore.ctx = (read_after, recover);
              heap;
              threads =
                [
                  (fun () -> ignore (P.pmwcas p ~tid:0 [ (a, 0, 1, `Shared) ]));
                  (fun () -> ignore (P.pmwcas p ~tid:1 [ (a, 0, 2, `Shared) ]));
                ];
            })
          ~check:(fun (read_after, recover) _heap ~crashed ->
            if crashed then recover ();
            let v = read_after () in
            Alcotest.(check bool)
              (Printf.sprintf "clean value after %s (got %d)"
                 (if crashed then "crash" else "completion")
                 v)
              true
              (List.mem v [ 0; 1; 2 ]))
          ()));
  ()

let suite =
  [
    Alcotest.test_case "universal: concurrent crashes linearizable" `Quick
      test_universal_concurrent_crash_lincheck;
    Alcotest.test_case "decentralized recovery runs concurrently" `Quick
      test_decentralized_recovery_concurrent;
    Alcotest.test_case "pmwcas: exhaustive race with crashes" `Quick
      test_pmwcas_explore_race_with_crashes;
  ]
