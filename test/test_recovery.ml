(** Whole-system recovery: the node pool's crash rebuild partitions
    [1 .. capacity] exactly (unit + QCheck), alloc/free intents follow
    the log-then-link discipline (the WAL record is durable before the
    node changes), [Recovery.reattach] brings a crashed system back
    with zero leaked nodes, and [fsck] refuses a deliberately
    corrupted log. *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Wal = Dssq_pmem.Wal
module Recovery = Dssq_core.Recovery
module Queue_intf = Dssq_core.Queue_intf

(* --------------------- node-pool crash rebuild ------------------------ *)

let test_rebuild_partitions () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Pool = Dssq_core.Node_pool.Make (M) in
  let p = Pool.create ~capacity:16 ~nthreads:2 () in
  (* allocate a few, "lose" the volatile free lists in a crash, rebuild
     keeping exactly the allocated set *)
  let kept = List.init 5 (fun i -> Pool.alloc p ~tid:(i mod 2) ~value:i) in
  let keep i = List.mem i kept in
  Pool.rebuild_free_lists p ~keep;
  let a = Pool.audit p ~keep in
  Alcotest.(check (list int)) "no leaks" [] a.Dssq_core.Node_pool.leaked;
  Alcotest.(check (list int)) "no duals" [] a.Dssq_core.Node_pool.dual;
  Alcotest.(check int) "kept" 5 a.Dssq_core.Node_pool.kept_nodes;
  Alcotest.(check int) "free" 11 a.Dssq_core.Node_pool.free_nodes

(* Any keep set whatsoever: the rebuilt free lists and the kept set
   partition [1 .. capacity] exactly — no node leaked, none in two
   places. *)
let prop_rebuild_partitions =
  QCheck.Test.make ~count:200
    ~name:"node pool: rebuilt free lists partition 1..capacity"
    QCheck.(pair (int_range 1 48) (list_of_size Gen.(int_range 0 64) bool))
    (fun (capacity, keep_bits) ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module Pool = Dssq_core.Node_pool.Make (M) in
      let p = Pool.create ~capacity ~nthreads:3 () in
      let keep i = i <= List.length keep_bits && List.nth keep_bits (i - 1) in
      Pool.rebuild_free_lists p ~keep;
      let a = Pool.audit p ~keep in
      a.Dssq_core.Node_pool.leaked = []
      && a.Dssq_core.Node_pool.dual = []
      && a.Dssq_core.Node_pool.kept_nodes + a.Dssq_core.Node_pool.free_nodes
         = capacity)

(* ------------------------- log-then-link ------------------------------ *)

let test_log_then_link () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Pool = Dssq_core.Node_pool.Make (M) in
  let wal = Pool.Wal.create ~lanes:2 ~lane_capacity:16 () in
  let p = Pool.create ~wal ~pool_id:7 ~capacity:8 ~nthreads:2 () in
  let n1 = Pool.alloc p ~tid:0 ~value:41 in
  let n2 = Pool.alloc p ~tid:1 ~value:42 in
  Pool.free p ~tid:1 n2;
  Alcotest.(check int) "three intents logged" 3 (Pool.Wal.appended wal);
  let records, torn = Pool.Wal.replay wal in
  Alcotest.(check int) "no torn records" 0 torn;
  Alcotest.(check (list (pair int (pair int int))))
    "alloc/free intents, node and pool id as payload"
    [
      (Wal.Codec.kind_alloc, (n1, 7));
      (Wal.Codec.kind_alloc, (n2, 7));
      (Wal.Codec.kind_free, (n2, 7));
    ]
    (List.map (fun r -> (r.Wal.r_kind, (r.Wal.r_a, r.Wal.r_b))) records)

(* ---------------------- system-level reattach ------------------------- *)

(* A crashed dss-queue comes back through the one system entry point:
   WAL replayed, root directory re-attached, recover run, audit clean. *)
let test_reattach_end_to_end () =
  let heap = Heap.create ~line_size:8 () in
  let (module M) = Sim.memory heap in
  let module R = Dssq_workload.Registry.Make (M) in
  let sys = R.Sys.create ~nthreads:1 ~wal_lane_capacity:128 () in
  let ops =
    R.setup ~system:sys ~mk:"dss-queue" ~init_nodes:2
      (Queue_intf.config ~nthreads:1 ~capacity:64 ())
  in
  for i = 1 to 20 do
    ops.Queue_intf.d_enqueue ~tid:0 (100 + i);
    if i mod 2 = 0 then ignore (ops.Queue_intf.d_dequeue ~tid:0)
  done;
  Sim.apply_crash heap ~evict_p:0.5 ~seed:3;
  let rep = R.Sys.reattach sys in
  Alcotest.(check int) "zero leaked nodes" 0 rep.Recovery.leaked_total;
  Alcotest.(check int) "one root attached" 1 rep.Recovery.roots_attached;
  Alcotest.(check (list string))
    "object recovered" [ "dss-queue" ]
    (List.map (fun o -> o.Recovery.o_name) rep.Recovery.objects);
  if rep.Recovery.replayed <= 0 then
    Alcotest.failf "expected replayed WAL records, got %d"
      rep.Recovery.replayed;
  (* reattach truncated the log: a fresh crash replays only new intents *)
  ops.Queue_intf.d_enqueue ~tid:0 999;
  let rep2 = R.Sys.reattach sys in
  Alcotest.(check int) "zero leaks after second crash" 0
    rep2.Recovery.leaked_total;
  if rep2.Recovery.replayed >= rep.Recovery.replayed then
    Alcotest.failf "log not truncated: %d records replayed after checkpoint"
      rep2.Recovery.replayed;
  (* and the queue still works *)
  ops.Queue_intf.enqueue ~tid:0 7;
  let rec drain acc =
    match ops.Queue_intf.dequeue ~tid:0 with
    | v when v = Queue_intf.empty_value -> List.rev acc
    | v -> drain (v :: acc)
  in
  let drained = drain [] in
  if not (List.mem 7 drained) then
    Alcotest.failf "post-recovery enqueue lost (drained %d values)"
      (List.length drained)

(* Random programs: whatever the pre-crash history, reattach reports
   zero leaks, every drained value was enqueued, and no value is
   dequeued twice. *)
let prop_reattach_no_leaks =
  QCheck.Test.make ~count:60 ~name:"recovery: random program, crash, 0 leaks"
    QCheck.(
      pair (int_range 0 1000)
        (make
           ~print:(fun ops ->
             String.concat ""
               (List.map (function true -> "E" | false -> "D") ops))
           Gen.(list_size (int_range 1 40) bool)))
    (fun (seed, prog) ->
      let heap = Heap.create ~line_size:8 () in
      let (module M) = Sim.memory heap in
      let module R = Dssq_workload.Registry.Make (M) in
      let sys = R.Sys.create ~nthreads:1 ~wal_lane_capacity:256 () in
      let ops =
        R.setup ~system:sys ~mk:"dss-queue" ~init_nodes:0
          (Queue_intf.config ~nthreads:1 ~capacity:64 ())
      in
      let enqueued = ref [] in
      let dequeued = ref [] in
      let next = ref 0 in
      List.iter
        (fun enq ->
          if enq then begin
            incr next;
            enqueued := !next :: !enqueued;
            ops.Queue_intf.d_enqueue ~tid:0 !next
          end
          else
            match ops.Queue_intf.d_dequeue ~tid:0 with
            | v when v = Queue_intf.empty_value -> ()
            | v -> dequeued := v :: !dequeued)
        prog;
      Sim.apply_crash heap ~evict_p:0.5 ~seed;
      let rep = R.Sys.reattach sys in
      let rec drain acc =
        match ops.Queue_intf.dequeue ~tid:0 with
        | v when v = Queue_intf.empty_value -> acc
        | v -> drain (v :: acc)
      in
      let post = drain [] in
      let seen = !dequeued @ post in
      rep.Recovery.leaked_total = 0
      && List.for_all (fun v -> List.mem v !enqueued) post
      && List.length (List.sort_uniq compare seen) = List.length seen)

(* ------------------------------ fsck ---------------------------------- *)

let test_fsck_rejects_corruption () =
  let heap = Heap.create ~line_size:8 () in
  let (module M) = Sim.memory heap in
  let module R = Dssq_workload.Registry.Make (M) in
  let sys = R.Sys.create ~nthreads:1 ~wal_lane_capacity:64 () in
  let ops =
    R.setup ~system:sys ~mk:"dss-queue" ~init_nodes:0
      (Queue_intf.config ~nthreads:1 ~capacity:32 ())
  in
  for i = 1 to 8 do
    ops.Queue_intf.d_enqueue ~tid:0 i
  done;
  (* clean heap: fsck passes and reports real numbers *)
  (match R.Sys.fsck sys with
  | Ok rep ->
      if rep.Recovery.leaked_total <> 0 then
        Alcotest.failf "clean fsck reports %d leaks" rep.Recovery.leaked_total
  | Error e -> Alcotest.failf "clean fsck failed: %s" e);
  (* flip one payload bit of a committed record: fsck must refuse *)
  R.Sys.Wal.corrupt_word (R.Sys.wal sys) ~lane:0 ~slot:1 ~word:1
    ~f:(fun a -> a lxor (1 lsl 5));
  match R.Sys.fsck sys with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fsck accepted a bit-flipped log"

(* ------------------------------ roots --------------------------------- *)

let test_roots_directory () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Roots = Dssq_pmem.Roots.Make (M) in
  let r = Roots.create ~capacity:4 () in
  let i0 = Roots.register r ~name:"queue" ~value:10 in
  let i1 = Roots.register r ~name:"stack" ~value:20 in
  Alcotest.(check (option int)) "lookup queue" (Some 10)
    (Roots.lookup r "queue");
  Alcotest.(check (option int)) "lookup stack" (Some 20)
    (Roots.lookup r "stack");
  Alcotest.(check (option int)) "lookup missing" None (Roots.lookup r "heap");
  (* re-registering a name updates in place *)
  let i0' = Roots.register r ~name:"queue" ~value:11 in
  Alcotest.(check int) "update reuses the entry" i0 i0';
  Alcotest.(check (option int)) "updated value" (Some 11)
    (Roots.lookup r "queue");
  ignore i1;
  match Roots.verify r with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "verify counts %d entries" n
  | Error e -> Alcotest.failf "verify failed: %s" e

let suite =
  [
    Alcotest.test_case "pool rebuild partitions 1..capacity" `Quick
      test_rebuild_partitions;
    Alcotest.test_case "alloc/free log before linking" `Quick
      test_log_then_link;
    Alcotest.test_case "reattach end to end, zero leaks" `Quick
      test_reattach_end_to_end;
    Alcotest.test_case "fsck rejects a corrupted log" `Quick
      test_fsck_rejects_corruption;
    Alcotest.test_case "root directory register/lookup/update" `Quick
      test_roots_directory;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_rebuild_partitions; prop_reattach_no_leaks ]
