let () =
  Alcotest.run "dssq"
    [
      ("pmem", Test_pmem.suite);
      ("wal", Test_wal.suite);
      ("recovery", Test_recovery.suite);
      ("sim", Test_sim.suite);
      ("spec", Test_spec.suite);
      ("lincheck", Test_lincheck.suite);
      ("tagged", Test_tagged.suite);
      ("ebr", Test_ebr.suite);
      ("dss-queue", Test_dss_queue.suite);
      ("dss-queue-crash", Test_dss_queue_crash.suite);
      ("pmwcas", Test_pmwcas.suite);
      ("baselines", Test_baselines.suite);
      ("caswe", Test_caswe.suite);
      ("universal", Test_universal.suite);
      ("workload", Test_workload.suite);
      ("properties", Test_properties.suite);
      ("dss-register", Test_dss_register.suite);
      ("detectable", Test_detectable.suite);
      ("dss-cell", Test_dss_cell.suite);
      ("dss-stack", Test_dss_stack.suite);
      ("nested", Test_nested.suite);
      ("cross-queue", Test_cross_queue.suite);
      ("hashmap", Test_hashmap.suite);
      ("nrl", Test_nrl.suite);
      ("msgpass", Test_msgpass.suite);
      ("litmus", Test_litmus.suite);
      ("explore", Test_explore.suite);
      ("mutants", Test_mutants.suite);
      ("rme", Test_rme.suite);
      ("coverage", Test_coverage.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("attrib", Test_attrib.suite);
    ]
