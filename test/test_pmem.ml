(** Unit tests for the simulated persistent heap: volatile/persisted
    split, flush semantics, crash with and without eviction, statistics. *)

open Helpers
module Cell = Dssq_pmem.Cell

let test_alloc_initial_persisted () =
  let h = Heap.create () in
  let c = Heap.alloc h ~name:"c" 7 in
  Alcotest.(check int) "volatile" 7 (Heap.read h c);
  Alcotest.(check int) "persisted" 7 c.Cell.persisted;
  Alcotest.(check bool) "clean" false (Cell.is_dirty c)

let test_write_is_volatile () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 42;
  Alcotest.(check int) "volatile sees write" 42 (Heap.read h c);
  Alcotest.(check int) "persisted unchanged" 0 c.Cell.persisted;
  Alcotest.(check bool) "dirty" true (Cell.is_dirty c)

let test_flush_persists () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 42;
  Heap.flush h c;
  Alcotest.(check int) "persisted" 42 c.Cell.persisted;
  Alcotest.(check bool) "clean after flush" false (Cell.is_dirty c)

let test_crash_drops_unflushed () =
  let h = Heap.create () in
  let c1 = Heap.alloc h 1 in
  let c2 = Heap.alloc h 2 in
  Heap.write h c1 10;
  Heap.write h c2 20;
  Heap.flush h c1;
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check int) "flushed survives" 10 (Heap.read h c1);
  Alcotest.(check int) "unflushed reverts" 2 (Heap.read h c2)

let test_crash_eviction_persists () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 5;
  Heap.crash h ~evict:(fun () -> true);
  Alcotest.(check int) "evicted line persisted" 5 (Heap.read h c);
  Alcotest.(check int) "persisted too" 5 c.Cell.persisted

let test_crash_clears_dirty () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 5;
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check bool) "clean after crash" false (Cell.is_dirty c);
  Alcotest.(check int) "no dirty cells" 0 (Heap.dirty_count h)

let test_cas_success_and_failure () =
  let h = Heap.create () in
  let c = Heap.alloc h 3 in
  Alcotest.(check bool) "cas hits" true (Heap.cas h c ~expected:3 ~desired:4);
  Alcotest.(check int) "value updated" 4 (Heap.read h c);
  Alcotest.(check bool) "cas misses" false (Heap.cas h c ~expected:3 ~desired:5);
  Alcotest.(check int) "value intact" 4 (Heap.read h c)

let test_cas_marks_dirty () =
  let h = Heap.create () in
  let c = Heap.alloc h 3 in
  ignore (Heap.cas h c ~expected:3 ~desired:4);
  Alcotest.(check bool) "dirty after cas" true (Cell.is_dirty c);
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check int) "cas result dropped" 3 (Heap.read h c)

let test_polymorphic_cells () =
  let h = Heap.create () in
  let c = Heap.alloc h None in
  Heap.write h c (Some "x");
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check bool) "boxed value reverts" true (Heap.read h c = None);
  Heap.write h c (Some "y");
  Heap.flush h c;
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check bool) "boxed value persisted" true (Heap.read h c = Some "y")

let test_stats_counting () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  ignore (Heap.read h c);
  Heap.write h c 1;
  ignore (Heap.cas h c ~expected:1 ~desired:2);
  Heap.flush h c;
  Heap.fence h;
  let s = Heap.stats h in
  Alcotest.(check int) "reads" 1 s.Heap.reads;
  Alcotest.(check int) "writes" 1 s.Heap.writes;
  Alcotest.(check int) "cases" 1 s.Heap.cases;
  Alcotest.(check int) "flushes" 1 s.Heap.flushes;
  Alcotest.(check int) "fences" 1 s.Heap.fences;
  Heap.reset_stats h;
  Alcotest.(check int) "reset" 0 (Heap.stats h).Heap.reads

let test_crash_random_extremes () =
  let h = Heap.create () in
  let cells = List.init 10 (fun i -> Heap.alloc h i) in
  List.iter (fun c -> Heap.write h c 99) cells;
  let rng = Random.State.make [| 1 |] in
  Heap.crash_random h ~evict_p:1.0 ~rng;
  List.iter
    (fun c -> Alcotest.(check int) "all evicted" 99 (Heap.read h c))
    cells;
  List.iter (fun c -> Heap.write h c 77) cells;
  Heap.crash_random h ~evict_p:0.0 ~rng;
  List.iter
    (fun c -> Alcotest.(check int) "none evicted" 99 (Heap.read h c))
    cells

(* A fixed RNG seed must give the same evicted/lost verdict per cell on
   every run — crash injection is reproducible from a reported seed. *)
let test_crash_random_deterministic () =
  let run () =
    let h = Heap.create () in
    let cells =
      List.init 32 (fun i -> Heap.alloc h ~name:(Printf.sprintf "c%d" i) i)
    in
    List.iter (fun c -> Heap.write h c 1_000) cells;
    let rng = Random.State.make [| 42 |] in
    Heap.crash_random h ~evict_p:0.5 ~rng;
    Alcotest.(check int) "heap clean after crash" 0 (Heap.dirty_count h);
    List.map (Heap.read h) cells
  in
  let a = run () in
  Alcotest.(check (list int)) "fixed seed, same eviction set" a (run ());
  Alcotest.(check bool) "some lines evicted" true (List.mem 1_000 a);
  Alcotest.(check bool) "some lines lost" true
    (List.exists (fun v -> v <> 1_000) a)

let suite =
  [
    Alcotest.test_case "alloc: initial value persisted" `Quick
      test_alloc_initial_persisted;
    Alcotest.test_case "write is volatile until flush" `Quick
      test_write_is_volatile;
    Alcotest.test_case "flush persists" `Quick test_flush_persists;
    Alcotest.test_case "crash drops unflushed writes" `Quick
      test_crash_drops_unflushed;
    Alcotest.test_case "crash eviction persists dirty lines" `Quick
      test_crash_eviction_persists;
    Alcotest.test_case "crash leaves heap clean" `Quick test_crash_clears_dirty;
    Alcotest.test_case "cas success and failure" `Quick
      test_cas_success_and_failure;
    Alcotest.test_case "cas marks dirty" `Quick test_cas_marks_dirty;
    Alcotest.test_case "polymorphic (boxed) cells" `Quick
      test_polymorphic_cells;
    Alcotest.test_case "statistics counters" `Quick test_stats_counting;
    Alcotest.test_case "crash_random evict_p extremes" `Quick
      test_crash_random_extremes;
    Alcotest.test_case "crash_random is deterministic per seed" `Quick
      test_crash_random_deterministic;
  ]
