(** Unit tests for the simulated persistent heap: volatile/persisted
    split, flush semantics, crash with and without eviction, statistics. *)

open Helpers
module Cell = Dssq_pmem.Cell

let test_alloc_initial_persisted () =
  let h = Heap.create () in
  let c = Heap.alloc h ~name:"c" 7 in
  Alcotest.(check int) "volatile" 7 (Heap.read h c);
  Alcotest.(check int) "persisted" 7 c.Cell.persisted;
  Alcotest.(check bool) "clean" false (Cell.is_dirty c)

let test_write_is_volatile () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 42;
  Alcotest.(check int) "volatile sees write" 42 (Heap.read h c);
  Alcotest.(check int) "persisted unchanged" 0 c.Cell.persisted;
  Alcotest.(check bool) "dirty" true (Cell.is_dirty c)

let test_flush_persists () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 42;
  Heap.flush h c;
  Alcotest.(check int) "persisted" 42 c.Cell.persisted;
  Alcotest.(check bool) "clean after flush" false (Cell.is_dirty c)

let test_crash_drops_unflushed () =
  let h = Heap.create () in
  let c1 = Heap.alloc h 1 in
  let c2 = Heap.alloc h 2 in
  Heap.write h c1 10;
  Heap.write h c2 20;
  Heap.flush h c1;
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check int) "flushed survives" 10 (Heap.read h c1);
  Alcotest.(check int) "unflushed reverts" 2 (Heap.read h c2)

let test_crash_eviction_persists () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 5;
  Heap.crash h ~evict:(fun () -> true);
  Alcotest.(check int) "evicted line persisted" 5 (Heap.read h c);
  Alcotest.(check int) "persisted too" 5 c.Cell.persisted

let test_crash_clears_dirty () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.write h c 5;
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check bool) "clean after crash" false (Cell.is_dirty c);
  Alcotest.(check int) "no dirty cells" 0 (Heap.dirty_count h)

let test_cas_success_and_failure () =
  let h = Heap.create () in
  let c = Heap.alloc h 3 in
  Alcotest.(check bool) "cas hits" true (Heap.cas h c ~expected:3 ~desired:4);
  Alcotest.(check int) "value updated" 4 (Heap.read h c);
  Alcotest.(check bool) "cas misses" false (Heap.cas h c ~expected:3 ~desired:5);
  Alcotest.(check int) "value intact" 4 (Heap.read h c)

let test_cas_marks_dirty () =
  let h = Heap.create () in
  let c = Heap.alloc h 3 in
  ignore (Heap.cas h c ~expected:3 ~desired:4);
  Alcotest.(check bool) "dirty after cas" true (Cell.is_dirty c);
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check int) "cas result dropped" 3 (Heap.read h c)

let test_polymorphic_cells () =
  let h = Heap.create () in
  let c = Heap.alloc h None in
  Heap.write h c (Some "x");
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check bool) "boxed value reverts" true (Heap.read h c = None);
  Heap.write h c (Some "y");
  Heap.flush h c;
  Heap.crash h ~evict:(fun () -> false);
  Alcotest.(check bool) "boxed value persisted" true (Heap.read h c = Some "y")

let test_stats_counting () =
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  ignore (Heap.read h c);
  Heap.write h c 1;
  ignore (Heap.cas h c ~expected:1 ~desired:2);
  Heap.flush h c;
  Heap.fence h;
  let s = Heap.stats h in
  Alcotest.(check int) "reads" 1 s.Heap.reads;
  Alcotest.(check int) "writes" 1 s.Heap.writes;
  Alcotest.(check int) "cases" 1 s.Heap.cases;
  Alcotest.(check int) "flushes" 1 s.Heap.flushes;
  Alcotest.(check int) "fences" 1 s.Heap.fences;
  Heap.reset_stats h;
  Alcotest.(check int) "reset" 0 (Heap.stats h).Heap.reads

let test_crash_random_extremes () =
  let h = Heap.create () in
  let cells = List.init 10 (fun i -> Heap.alloc h i) in
  List.iter (fun c -> Heap.write h c 99) cells;
  let rng = Random.State.make [| 1 |] in
  Heap.crash_random h ~evict_p:1.0 ~rng;
  List.iter
    (fun c -> Alcotest.(check int) "all evicted" 99 (Heap.read h c))
    cells;
  List.iter (fun c -> Heap.write h c 77) cells;
  Heap.crash_random h ~evict_p:0.0 ~rng;
  List.iter
    (fun c -> Alcotest.(check int) "none evicted" 99 (Heap.read h c))
    cells

(* A fixed RNG seed must give the same evicted/lost verdict per cell on
   every run — crash injection is reproducible from a reported seed. *)
let test_crash_random_deterministic () =
  let run () =
    let h = Heap.create () in
    let cells =
      List.init 32 (fun i -> Heap.alloc h ~name:(Printf.sprintf "c%d" i) i)
    in
    List.iter (fun c -> Heap.write h c 1_000) cells;
    let rng = Random.State.make [| 42 |] in
    Heap.crash_random h ~evict_p:0.5 ~rng;
    Alcotest.(check int) "heap clean after crash" 0 (Heap.dirty_count h);
    List.map (Heap.read h) cells
  in
  let a = run () in
  Alcotest.(check (list int)) "fixed seed, same eviction set" a (run ());
  Alcotest.(check bool) "some lines evicted" true (List.mem 1_000 a);
  Alcotest.(check bool) "some lines lost" true
    (List.exists (fun v -> v <> 1_000) a)

(* ------------------- line-granular persistence ----------------------- *)

module Line = Dssq_memory.Memory_intf.Line

let test_clean_flush_elided () =
  let h = Heap.create ~line_size:4 () in
  let c = Heap.alloc h 0 in
  Heap.flush h c;
  let s = Heap.stats h in
  Alcotest.(check int) "clean flush not charged" 0 s.Heap.flushes;
  Alcotest.(check int) "clean flush elided" 1 s.Heap.elided_flushes;
  Heap.write h c 1;
  Heap.flush h c;
  Alcotest.(check int) "dirty flush charged" 1 s.Heap.flushes;
  Heap.flush h c;
  Alcotest.(check int) "second flush elided" 2 s.Heap.elided_flushes;
  Alcotest.(check int) "still one write-back" 1 s.Heap.flushes

let test_size1_never_elides () =
  (* Line size 1 is the legacy word-granular model: every flush call is
     charged, even on a clean cell (the DSS helping paths flush cells
     they did not dirty, and the original counters charged those). *)
  let h = Heap.create () in
  let c = Heap.alloc h 0 in
  Heap.flush h c;
  Heap.flush h c;
  let s = Heap.stats h in
  Alcotest.(check int) "every flush charged at size 1" 2 s.Heap.flushes;
  Alcotest.(check int) "nothing elided at size 1" 0 s.Heap.elided_flushes

let test_flush_persists_whole_line () =
  let h = Heap.create ~line_size:4 () in
  match Heap.alloc_block h ~name:"blk" [ 0; 0; 0; 0 ] with
  | [ a; b; c; d ] as cells ->
      Alcotest.(check bool) "block shares one line" true
        (List.for_all (fun x -> Cell.line_id x = Cell.line_id a) cells);
      List.iteri (fun i x -> Heap.write h x (i + 1)) cells;
      Heap.flush h b;
      List.iteri
        (fun i x ->
          Alcotest.(check int)
            (Printf.sprintf "member %d persisted by one flush" i)
            (i + 1) x.Cell.persisted)
        cells;
      Alcotest.(check int) "one charged flush" 1 (Heap.stats h).Heap.flushes;
      Alcotest.(check bool) "line clean" false (Cell.is_dirty c);
      Alcotest.(check bool) "line clean (d)" false (Cell.is_dirty d)
  | _ -> Alcotest.fail "alloc_block arity"

let test_blocks_never_share_lines () =
  let h = Heap.create ~line_size:4 () in
  let blk1 = Heap.alloc_block h [ 1; 2; 3 ] in
  let blk2 = Heap.alloc_block h [ 4; 5 ] in
  let lone = Heap.alloc h 6 in
  let ids cs = List.map Cell.line_id cs in
  List.iter
    (fun id1 ->
      Alcotest.(check bool) "blocks on distinct lines" false
        (List.mem id1 (ids blk2)))
    (ids blk1);
  Alcotest.(check bool) "trailing alloc off the block line" false
    (List.mem (Cell.line_id lone) (ids blk2))

let test_isolated_placement () =
  let h = Heap.create ~line_size:4 () in
  let a = Heap.alloc h 1 in
  let hot = Heap.alloc h ~placement:Line.Isolated 2 in
  let b = Heap.alloc h 3 in
  Alcotest.(check bool) "isolated cell alone on its line" true
    (Cell.line_id hot <> Cell.line_id a && Cell.line_id hot <> Cell.line_id b);
  Alcotest.(check int) "isolated line has one member" 1
    (List.length (Heap.members h (Cell.line hot)))

let test_crash_evicts_line_as_unit () =
  let h = Heap.create ~line_size:4 () in
  let blk_old = Heap.alloc_block h [ 0; 0; 0; 0 ] in
  let blk_new = Heap.alloc_block h [ 0; 0; 0; 0 ] in
  List.iter (fun c -> Heap.write h c 7) blk_old;
  List.iter (fun c -> Heap.write h c 9) blk_new;
  (* One verdict per dirty line, drawn in most-recent-first cell order:
     the newer block's line gets the first draw. *)
  let draws = ref 0 in
  Heap.crash h ~evict:(fun () ->
      incr draws;
      !draws = 1);
  Alcotest.(check int) "one draw per dirty line, not per cell" 2 !draws;
  List.iter
    (fun c -> Alcotest.(check int) "evicted line kept whole" 9 (Heap.read h c))
    blk_new;
  List.iter
    (fun c -> Alcotest.(check int) "lost line dropped whole" 0 (Heap.read h c))
    blk_old

(* Random heap programs for the QCheck properties: a line size, a cell
   count, and a script of writes and flushes. *)
let arb_heap_program =
  QCheck.make
    ~print:(fun (ls, n, ops) ->
      Printf.sprintf "line_size=%d cells=%d ops=[%s]" ls n
        (String.concat "; "
           (List.map
              (function
                | `Write (i, v) -> Printf.sprintf "w %d %d" i v
                | `Flush i -> Printf.sprintf "f %d" i)
              ops)))
    QCheck.Gen.(
      int_range 1 8 >>= fun ls ->
      int_range 1 24 >>= fun n ->
      list_size (int_range 0 60)
        (oneof
           [
             map2 (fun i v -> `Write (i, v)) (int_range 0 (n - 1)) (int_range 0 1000);
             map (fun i -> `Flush i) (int_range 0 (n - 1));
           ])
      >>= fun ops -> return (ls, n, ops))

let build_and_run (ls, n, ops) =
  let h = Heap.create ~line_size:ls () in
  let cells = Array.init n (fun i -> Heap.alloc h ~name:(Printf.sprintf "q%d" i) i) in
  List.iter
    (function
      | `Write (i, v) -> Heap.write h cells.(i) v
      | `Flush i -> Heap.flush h cells.(i))
    ops;
  (h, cells)

(* With evict_p = 1 every dirty line is written back by eviction, so the
   post-crash persisted state must equal the pre-crash volatile state —
   cell by cell, whatever the line geometry. *)
let prop_full_eviction_preserves_volatile =
  QCheck.Test.make ~count:300 ~name:"evict_p=1: persisted = pre-crash volatile"
    arb_heap_program (fun prog ->
      let h, cells = build_and_run prog in
      let before = Array.map (Heap.read h) cells in
      let rng = Random.State.make [| 7 |] in
      Heap.crash_random h ~evict_p:1.0 ~rng;
      Array.for_all2
        (fun v c -> Heap.read h c = v && c.Cell.persisted = v)
        before cells
      && Heap.dirty_count h = 0)

(* Flushing a clean line (size >= 2) moves exactly one counter:
   elided_flushes.  Values, dirtiness, and every other counter are
   untouched. *)
let prop_clean_flush_only_bumps_elision =
  QCheck.Test.make ~count:300
    ~name:"clean-line flush changes only elided_flushes" arb_heap_program
    (fun (ls, n, ops) ->
      let ls = max 2 ls in
      let h, cells = build_and_run (ls, n, ops) in
      let target = cells.(0) in
      Heap.flush h target (* line now clean, whatever the script did *);
      let values = Array.map (Heap.read h) cells in
      let persisted = Array.map (fun c -> c.Cell.persisted) cells in
      let s = Heap.stats h in
      let snap =
        (s.Heap.reads, s.Heap.writes, s.Heap.cases, s.Heap.flushes, s.Heap.fences)
      in
      let elided = s.Heap.elided_flushes in
      Heap.flush h target;
      s.Heap.elided_flushes = elided + 1
      && (s.Heap.reads, s.Heap.writes, s.Heap.cases, s.Heap.flushes, s.Heap.fences)
         = snap
      && Array.for_all2 (fun v c -> Heap.read h c = v) values cells
      && Array.for_all2 (fun v c -> c.Cell.persisted = v) persisted cells)

let suite =
  [
    Alcotest.test_case "alloc: initial value persisted" `Quick
      test_alloc_initial_persisted;
    Alcotest.test_case "write is volatile until flush" `Quick
      test_write_is_volatile;
    Alcotest.test_case "flush persists" `Quick test_flush_persists;
    Alcotest.test_case "crash drops unflushed writes" `Quick
      test_crash_drops_unflushed;
    Alcotest.test_case "crash eviction persists dirty lines" `Quick
      test_crash_eviction_persists;
    Alcotest.test_case "crash leaves heap clean" `Quick test_crash_clears_dirty;
    Alcotest.test_case "cas success and failure" `Quick
      test_cas_success_and_failure;
    Alcotest.test_case "cas marks dirty" `Quick test_cas_marks_dirty;
    Alcotest.test_case "polymorphic (boxed) cells" `Quick
      test_polymorphic_cells;
    Alcotest.test_case "statistics counters" `Quick test_stats_counting;
    Alcotest.test_case "crash_random evict_p extremes" `Quick
      test_crash_random_extremes;
    Alcotest.test_case "crash_random is deterministic per seed" `Quick
      test_crash_random_deterministic;
    Alcotest.test_case "clean-line flush is elided" `Quick
      test_clean_flush_elided;
    Alcotest.test_case "line size 1 never elides (legacy anchor)" `Quick
      test_size1_never_elides;
    Alcotest.test_case "flush persists the whole line" `Quick
      test_flush_persists_whole_line;
    Alcotest.test_case "alloc_block lines are private" `Quick
      test_blocks_never_share_lines;
    Alcotest.test_case "isolated placement gets a private line" `Quick
      test_isolated_placement;
    Alcotest.test_case "crash evicts or drops a line as a unit" `Quick
      test_crash_evicts_line_as_unit;
    QCheck_alcotest.to_alcotest prop_full_eviction_preserves_volatile;
    QCheck_alcotest.to_alcotest prop_clean_flush_only_bumps_elision;
  ]
