(** Shared helpers for the test suite: spec instances, history recording
    around queue operations, scenario runners with crash injection, and
    conversions between implementation-level and specification-level
    events. *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Explore = Dssq_sim.Explore
module Spec = Dssq_spec.Spec
module Dss_spec = Dssq_spec.Dss_spec
module Specs = Dssq_spec.Specs
module History = Dssq_history.History
module Recorder = Dssq_history.Recorder
module Lincheck = Dssq_lincheck.Lincheck
module Queue_intf = Dssq_core.Queue_intf
module Tagged = Dssq_core.Tagged

(* The D<queue> specification-level alphabet. *)
type qop = Specs.Queue.op Dss_spec.op
type qresp = (Specs.Queue.op, Specs.Queue.response) Dss_spec.response

let queue_spec ~nthreads :
    ( (int list, Specs.Queue.op, Specs.Queue.response) Dss_spec.state,
      qop,
      qresp )
    Spec.t =
  Dss_spec.make ~nthreads (Specs.Queue.spec ())

(* Map a dequeue's integer return to the spec response. *)
let deq_response v : qresp =
  if v = Queue_intf.empty_value then Dss_spec.Ret Specs.Queue.Empty
  else Dss_spec.Ret (Specs.Queue.Value v)

let resolved_response (r : Queue_intf.resolved) : qresp =
  match r with
  | Queue_intf.Nothing -> Dss_spec.Status (None, None)
  | Queue_intf.Enq_pending v -> Dss_spec.Status (Some (Specs.Queue.Enqueue v), None)
  | Queue_intf.Enq_done v ->
      Dss_spec.Status (Some (Specs.Queue.Enqueue v), Some Specs.Queue.Ok)
  | Queue_intf.Deq_pending -> Dss_spec.Status (Some Specs.Queue.Dequeue, None)
  | Queue_intf.Deq_empty ->
      Dss_spec.Status (Some Specs.Queue.Dequeue, Some Specs.Queue.Empty)
  | Queue_intf.Deq_done v ->
      Dss_spec.Status (Some Specs.Queue.Dequeue, Some (Specs.Queue.Value v))

(** A detectable queue instance bundled as closures, together with its
    heap, so scenario code does not need the functor-generated types. *)
type dq = {
  heap : Heap.t;
  prep_enqueue : tid:int -> int -> unit;
  exec_enqueue : tid:int -> unit;
  prep_dequeue : tid:int -> unit;
  exec_dequeue : tid:int -> int;
  enqueue : tid:int -> int -> unit;
  dequeue : tid:int -> int;
  resolve : tid:int -> Queue_intf.resolved;
  recover : unit -> unit;
  recover_thread : tid:int -> unit;
  to_list : unit -> int list;
  free_count : unit -> int;
  recovered_violations : unit -> string list;
  reset_volatile : unit -> unit;
}

let make_dss_queue ?(reclaim = true) ~nthreads ~capacity () : dq =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let q = Q.create ~reclaim ~nthreads ~capacity () in
  {
    heap;
    prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
    exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
    prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
    exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
    enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
    dequeue = (fun ~tid -> Q.dequeue q ~tid);
    resolve = (fun ~tid -> Q.resolve q ~tid);
    recover = (fun () -> Q.recover q);
    recover_thread = (fun ~tid -> Q.recover_thread q ~tid);
    to_list = (fun () -> Q.to_list q);
    free_count = (fun () -> Q.free_count q);
    recovered_violations = (fun () -> Q.recovered_violations q);
    reset_volatile = (fun () -> Q.reset_volatile q);
  }

(* The same closure bundle for the detectable baselines, so crash and
   lincheck scenarios run unchanged across implementations.  Structural
   invariant checking and per-thread recovery are DSS-queue-specific and
   stubbed here. *)

let make_log_queue ~nthreads ~capacity () : dq =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_baselines.Log_queue.Make (M) in
  let q = Q.create ~nthreads ~capacity in
  {
    heap;
    prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
    exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
    prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
    exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
    enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
    dequeue = (fun ~tid -> Q.dequeue q ~tid);
    resolve = (fun ~tid -> Q.resolve q ~tid);
    recover = (fun () -> Q.recover q);
    recover_thread = (fun ~tid:_ -> Q.recover q);
    to_list = (fun () -> Q.to_list q);
    free_count = (fun () -> 0);
    recovered_violations = (fun () -> []);
    reset_volatile = (fun () -> ());
  }

let make_caswe_queue ~variant ~nthreads ~capacity () : dq =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  match variant with
  | `General ->
      let module Q = Dssq_baselines.Caswe_queue.General (M) in
      let q = Q.create ~nthreads ~capacity () in
      {
        heap;
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
        recover_thread = (fun ~tid:_ -> Q.recover q);
        to_list = (fun () -> Q.to_list q);
        free_count = (fun () -> 0);
        recovered_violations = (fun () -> []);
        reset_volatile = (fun () -> ());
      }
  | `Fast ->
      let module Q = Dssq_baselines.Caswe_queue.Fast (M) in
      let q = Q.create ~nthreads ~capacity () in
      {
        heap;
        prep_enqueue = (fun ~tid v -> Q.prep_enqueue q ~tid v);
        exec_enqueue = (fun ~tid -> Q.exec_enqueue q ~tid);
        prep_dequeue = (fun ~tid -> Q.prep_dequeue q ~tid);
        exec_dequeue = (fun ~tid -> Q.exec_dequeue q ~tid);
        enqueue = (fun ~tid v -> Q.enqueue q ~tid v);
        dequeue = (fun ~tid -> Q.dequeue q ~tid);
        resolve = (fun ~tid -> Q.resolve q ~tid);
        recover = (fun () -> Q.recover q);
        recover_thread = (fun ~tid:_ -> Q.recover q);
        to_list = (fun () -> Q.to_list q);
        free_count = (fun () -> 0);
        recovered_violations = (fun () -> []);
        reset_volatile = (fun () -> ());
      }

(** Recorded, detectable operation wrappers: invocation goes into the
    history before the operation runs; if a crash cuts the operation off
    the invocation is left pending, which is what the checker expects. *)
module Record = struct
  let prep_enqueue rec_ dq ~tid v =
    ignore
      (Recorder.record rec_ ~tid
         (Dss_spec.Prep (Specs.Queue.Enqueue v))
         (fun () ->
           dq.prep_enqueue ~tid v;
           (Dss_spec.Ack : qresp)))

  let exec_enqueue rec_ dq ~tid v =
    ignore
      (Recorder.record rec_ ~tid
         (Dss_spec.Exec (Specs.Queue.Enqueue v))
         (fun () ->
           dq.exec_enqueue ~tid;
           (Dss_spec.Ret Specs.Queue.Ok : qresp)))

  let prep_dequeue rec_ dq ~tid =
    ignore
      (Recorder.record rec_ ~tid
         (Dss_spec.Prep Specs.Queue.Dequeue)
         (fun () ->
           dq.prep_dequeue ~tid;
           (Dss_spec.Ack : qresp)))

  let exec_dequeue rec_ dq ~tid =
    ignore
      (Recorder.record rec_ ~tid
         (Dss_spec.Exec Specs.Queue.Dequeue)
         (fun () -> deq_response (dq.exec_dequeue ~tid)))

  let enqueue rec_ dq ~tid v =
    ignore
      (Recorder.record rec_ ~tid
         (Dss_spec.Base (Specs.Queue.Enqueue v))
         (fun () ->
           dq.enqueue ~tid v;
           (Dss_spec.Ret Specs.Queue.Ok : qresp)))

  let dequeue rec_ dq ~tid =
    ignore
      (Recorder.record rec_ ~tid
         (Dss_spec.Base Specs.Queue.Dequeue)
         (fun () -> deq_response (dq.dequeue ~tid)))

  let resolve rec_ dq ~tid =
    ignore
      (Recorder.record rec_ ~tid Dss_spec.Resolve (fun () ->
           resolved_response (dq.resolve ~tid)))
end

let check_strict ~nthreads history =
  let spec = queue_spec ~nthreads in
  match Lincheck.check ~mode:Lincheck.Strict spec history with
  | Lincheck.Linearizable _ -> ()
  | Lincheck.Not_linearizable _ ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      History.pp
        ~pp_op:(spec.Spec.pp_op)
        ~pp_response:(spec.Spec.pp_response)
        fmt history;
      Format.pp_print_flush fmt ();
      Alcotest.failf "history not strictly linearizable:@.%s" (Buffer.contents buf)

(* Convenient Alcotest testables *)
let resolved : Queue_intf.resolved Alcotest.testable =
  Alcotest.testable Queue_intf.pp_resolved Queue_intf.equal_resolved

let int_list = Alcotest.(list int)
