(** The DSS interface in the message-passing model: an ABD-style
    replicated register with client-side prep/exec/resolve — the
    executable witness for the paper's portability claim (D2).

    Checked properties: the net layer's volatility, linearizability of
    the failure-free register, and — the crux — that crash sweeps over
    the detectable write, followed by resolve + reads, satisfy
    {e recoverable} linearizability (persistent atomicity), with the
    resolve verdict permanently consistent with what readers observe. *)

open Helpers
module Reg = Specs.Register

let test_net_basics () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Net = Dssq_msgpass.Net.Make (M) in
  let net = Net.create ~nprocs:3 in
  Net.send net ~dst:1 "a";
  Net.send net ~dst:1 "b";
  Net.send net ~dst:2 "c";
  Alcotest.(check (list string)) "fifo-ish delivery" [ "a"; "b" ]
    (Net.recv_all net ~me:1);
  Alcotest.(check (list string)) "empty after drain" [] (Net.recv_all net ~me:1);
  Alcotest.(check (list string)) "separate boxes" [ "c" ] (Net.recv_all net ~me:2)

let test_net_messages_are_volatile () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Net = Dssq_msgpass.Net.Make (M) in
  let net = Net.create ~nprocs:2 in
  Net.send net ~dst:1 "in-flight";
  Heap.crash heap ~evict:(fun () -> false);
  Alcotest.(check (list string)) "crash drops in-flight messages" []
    (Net.recv_all net ~me:1)

(* Helper: a fresh ABD world.  [nservers] servers, [nclients] clients. *)
let make_abd ~nservers ~nclients =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module A = Dssq_msgpass.Abd.Make (M) in
  let a = A.create ~nservers ~nclients in
  let servers ~until =
    A.reset_done a;
    List.init nservers (fun sid -> A.server a ~sid ~until)
  in
  ( heap,
    servers,
    object
      method read ~ci = A.read a ~ci
      method prep_write ~ci v = A.prep_write a ~ci v
      method exec_write ~ci = A.exec_write a ~ci

      method resolve ~ci =
        match A.resolve a ~ci with
        | A.Nothing -> `Nothing
        | A.Write_pending v -> `Pending v
        | A.Write_done v -> `Done v

      method finished = A.client_finished a
    end )

let test_failure_free_write_read () =
  let _heap, servers, a = make_abd ~nservers:3 ~nclients:1 in
  let client () =
    a#prep_write ~ci:0 7;
    a#exec_write ~ci:0;
    Alcotest.(check int) "read back" 7 (a#read ~ci:0);
    Alcotest.(check bool) "resolved done" true (a#resolve ~ci:0 = `Done 7);
    a#finished
  in
  let outcome =
    Sim.run _heap ~policy:(Sim.Random_seed 1) ~threads:(servers ~until:1 @ [ client ])
  in
  Sim.check_thread_errors outcome

let test_failure_free_linearizable () =
  let spec = Dss_spec.make ~nthreads:2 (Reg.spec ()) in
  for seed = 1 to 10 do
    let heap, servers, a = make_abd ~nservers:3 ~nclients:2 in
    let rec_ = Recorder.create () in
    let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
    let writer ~ci v () =
      record ~tid:ci (Dss_spec.Prep (Reg.Write v)) (fun () ->
          a#prep_write ~ci v;
          Dss_spec.Ack);
      record ~tid:ci (Dss_spec.Exec (Reg.Write v)) (fun () ->
          a#exec_write ~ci;
          Dss_spec.Ret Reg.Ok);
      record ~tid:ci (Dss_spec.Base Reg.Read) (fun () ->
          Dss_spec.Ret (Reg.Value (a#read ~ci)));
      a#finished
    in
    let outcome =
      Sim.run heap ~policy:(Sim.Random_seed seed)
        ~threads:(servers ~until:2 @ [ writer ~ci:0 10; writer ~ci:1 20 ])
    in
    Sim.check_thread_errors outcome;
    match Lincheck.check ~mode:Lincheck.Strict spec (Recorder.history rec_) with
    | Lincheck.Linearizable _ -> ()
    | Lincheck.Not_linearizable _ -> Alcotest.failf "seed %d: not linearizable" seed
  done

(* The crux: crash the whole system at every step of a detectable write;
   restart the servers; resolve; read.  The verdict must match what the
   (recorded) read observes, and the whole history must be recoverable-
   linearizable. *)
let test_crash_sweep_resolve () =
  let spec = Dss_spec.make ~nthreads:1 (Reg.spec ()) in
  List.iter
    (fun evict_p ->
      let finished = ref false in
      let step = ref 0 in
      while not !finished do
        let heap, servers, a = make_abd ~nservers:3 ~nclients:1 in
        let rec_ = Recorder.create () in
        let record ~tid op f = ignore (Recorder.record rec_ ~tid op f) in
        let client () =
          record ~tid:0 (Dss_spec.Prep (Reg.Write 5)) (fun () ->
              a#prep_write ~ci:0 5;
              Dss_spec.Ack);
          record ~tid:0 (Dss_spec.Exec (Reg.Write 5)) (fun () ->
              a#exec_write ~ci:0;
              Dss_spec.Ret Reg.Ok);
          a#finished
        in
        let outcome =
          Sim.run heap
            ~crash:(Sim.Crash_at_step !step)
            ~threads:(servers ~until:1 @ [ client ])
        in
        if not outcome.Sim.crashed then begin
          Sim.check_thread_errors outcome;
          finished := true
        end
        else begin
          Recorder.crash rec_;
          Sim.apply_crash heap ~evict_p ~seed:(800_000 + !step);
          (* Restart: fresh server incarnations, client resolves then
             reads; messages from before the crash are gone. *)
          let verdict = ref `Nothing in
          let observed = ref (-1) in
          let client2 () =
            record ~tid:0 Dss_spec.Resolve (fun () ->
                let r = a#resolve ~ci:0 in
                verdict := r;
                match r with
                | `Nothing -> Dss_spec.Status (None, None)
                | `Pending v ->
                    Dss_spec.Status (Some (Reg.Write v), None)
                | `Done v ->
                    Dss_spec.Status (Some (Reg.Write v), Some Reg.Ok));
            record ~tid:0 (Dss_spec.Base Reg.Read) (fun () ->
                let v = a#read ~ci:0 in
                observed := v;
                Dss_spec.Ret (Reg.Value v));
            a#finished
          in
          let outcome2 =
            Sim.run heap ~policy:(Sim.Random_seed !step)
              ~threads:(servers ~until:1 @ [ client2 ])
          in
          Sim.check_thread_errors outcome2;
          (* Verdict/observation consistency (single writer): *)
          (match !verdict with
          | `Done 5 ->
              Alcotest.(check int)
                (Printf.sprintf "done => readable (step %d)" !step)
                5 !observed
          | `Pending 5 | `Nothing ->
              Alcotest.(check int)
                (Printf.sprintf "pending => sealed forever (step %d)" !step)
                0 !observed
          | _ -> Alcotest.failf "odd verdict at step %d" !step);
          (* Full history: recoverable linearizability (persistent
             atomicity), the paper's condition for this model. *)
          match
            Lincheck.check ~mode:Lincheck.Recoverable spec
              (Recorder.history rec_)
          with
          | Lincheck.Linearizable _ -> ()
          | Lincheck.Not_linearizable _ ->
              Alcotest.failf "step %d: not recoverable-linearizable" !step
        end;
        incr step
      done)
    [ 0.0; 0.5 ]

let test_double_crash_stable_verdict () =
  (* Crash during the RESOLUTION too: once any resolve has returned a
     verdict, later resolves agree. *)
  for step1 = 4 to 40 do
   if true then begin
    let heap, servers, a = make_abd ~nservers:3 ~nclients:1 in
    let client () =
      a#prep_write ~ci:0 5;
      a#exec_write ~ci:0;
      a#finished
    in
    let o1 =
      Sim.run heap ~crash:(Sim.Crash_at_step step1)
        ~threads:(servers ~until:1 @ [ client ])
    in
    if o1.Sim.crashed then begin
      Sim.apply_crash heap ~evict_p:0.5 ~seed:step1;
      (* First resolution attempt, itself crashed somewhere. *)
      let r1 = ref None in
      let resolver () =
        r1 := Some (a#resolve ~ci:0);
        a#finished
      in
      let o2 =
        Sim.run heap
          ~crash:(Sim.Crash_at_step (step1 mod 17 * 3))
          ~threads:(servers ~until:1 @ [ resolver ])
      in
      if o2.Sim.crashed then Sim.apply_crash heap ~evict_p:0.5 ~seed:(step1 + 1);
      (* Second resolution runs to completion. *)
      let r2 = ref None in
      let resolver2 () =
        r2 := Some (a#resolve ~ci:0);
        a#finished
      in
      let o3 =
        Sim.run heap ~policy:(Sim.Random_seed step1)
          ~threads:(servers ~until:1 @ [ resolver2 ])
      in
      Sim.check_thread_errors o3;
      match (!r1, !r2) with
      | Some v1, Some v2 when not o2.Sim.crashed ->
          Alcotest.(check bool)
            (Printf.sprintf "verdicts agree (step %d)" step1)
            true (v1 = v2)
      | _, Some _ -> () (* first resolve was cut before returning *)
      | _ -> Alcotest.fail "second resolve did not finish"
    end
   end
  done

let suite =
  [
    Alcotest.test_case "net: send/recv" `Quick test_net_basics;
    Alcotest.test_case "net: messages are volatile" `Quick
      test_net_messages_are_volatile;
    Alcotest.test_case "abd: failure-free write/read/resolve" `Quick
      test_failure_free_write_read;
    Alcotest.test_case "abd: failure-free linearizable" `Quick
      test_failure_free_linearizable;
    Alcotest.test_case "abd: crash sweep, resolve decides conclusively"
      `Quick test_crash_sweep_resolve;
    Alcotest.test_case "abd: verdict stable across crashes in resolve"
      `Quick test_double_crash_stable_verdict;
  ]
