(** The write-ahead log's format guarantees, unit and property tested:
    append/replay round-trips, the checksum rejects every single-bit
    flip of every stored word, replay is idempotent, a torn final
    record is detected and dropped (never misread), interior damage is
    refused as corruption, and truncate leaves a clean empty log. *)

module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Wal = Dssq_pmem.Wal

(* A record for the generators: lane is assigned at append time. *)
type rcd = { kind : int; a : int; b : int }

let gen_rcd =
  QCheck.Gen.(
    map3
      (fun kind a b -> { kind; a; b })
      (int_range 1 15)
      (int_range 0 100_000)
      (int_range 0 100_000))

let arb_rcds lanes cap =
  QCheck.make
    ~print:(fun rss ->
      String.concat "; "
        (List.mapi
           (fun lane rs ->
             Printf.sprintf "lane%d:[%s]" lane
               (String.concat ","
                  (List.map
                     (fun r -> Printf.sprintf "%d/%d/%d" r.kind r.a r.b)
                     rs)))
           rss))
    QCheck.Gen.(
      flatten_l (List.init lanes (fun _ -> list_size (int_range 0 cap) gen_rcd)))

(* ------------------------------ unit ---------------------------------- *)

let test_roundtrip_basic () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module W = Wal.Make (M) in
  let t = W.create ~lanes:2 ~lane_capacity:4 () in
  W.append t ~lane:0 ~kind:Wal.Codec.kind_alloc ~a:7 ~b:0;
  W.append t ~lane:1 ~kind:Wal.Codec.kind_free ~a:9 ~b:1;
  W.append t ~lane:0 ~kind:Wal.Codec.kind_root ~a:0 ~b:0;
  Alcotest.(check int) "appended" 3 (W.appended t);
  let records, torn = W.replay t in
  Alcotest.(check int) "no torn tail" 0 torn;
  Alcotest.(check (list (pair int (pair int int))))
    "records, lane-major append order"
    [
      (0, (Wal.Codec.kind_alloc, 7));
      (0, (Wal.Codec.kind_root, 0));
      (1, (Wal.Codec.kind_free, 9));
    ]
    (List.map (fun r -> (r.Wal.r_lane, (r.Wal.r_kind, r.Wal.r_a))) records)

let test_full () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module W = Wal.Make (M) in
  let t = W.create ~lanes:1 ~lane_capacity:2 () in
  W.append t ~lane:0 ~kind:1 ~a:1 ~b:0;
  W.append t ~lane:0 ~kind:1 ~a:2 ~b:0;
  Alcotest.check_raises "third append overflows" (Wal.Full { lane = 0 })
    (fun () -> W.append t ~lane:0 ~kind:1 ~a:3 ~b:0)

let test_torn_tail_dropped () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module W = Wal.Make (M) in
  let t = W.create ~lanes:1 ~lane_capacity:8 () in
  for i = 1 to 3 do
    W.append t ~lane:0 ~kind:1 ~a:i ~b:0
  done;
  (* the final record's checksum never hit memory: a torn append *)
  W.corrupt_word t ~lane:0 ~slot:2 ~word:3 ~f:(fun _ -> 0);
  (match W.states t with
  | [ Wal.Torn { valid = 2; at = 2 } ] -> ()
  | s ->
      Alcotest.failf "expected Torn{valid=2;at=2}, got %s"
        (String.concat ";"
           (List.map
              (function
                | Wal.Clean n -> Printf.sprintf "Clean %d" n
                | Wal.Torn { valid; at } ->
                    Printf.sprintf "Torn{%d;%d}" valid at
                | Wal.Corrupt { at } -> Printf.sprintf "Corrupt{%d}" at)
              s)));
  (match W.verify t with
  | Error _ -> ()
  | Ok n -> Alcotest.failf "strict verify accepted a torn log (Ok %d)" n);
  let records, torn = W.replay t in
  Alcotest.(check int) "torn tail dropped" 1 torn;
  Alcotest.(check (list int))
    "valid prefix survives" [ 1; 2 ]
    (List.map (fun r -> r.Wal.r_a) records);
  (* the lane cursor now points at the dropped slot: appending reuses it *)
  W.append t ~lane:0 ~kind:1 ~a:99 ~b:0;
  let records, torn = W.replay t in
  Alcotest.(check int) "clean after overwrite" 0 torn;
  Alcotest.(check (list int))
    "overwritten tail replays" [ 1; 2; 99 ]
    (List.map (fun r -> r.Wal.r_a) records)

let test_interior_corruption_refused () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module W = Wal.Make (M) in
  let t = W.create ~lanes:1 ~lane_capacity:8 () in
  for i = 1 to 3 do
    W.append t ~lane:0 ~kind:1 ~a:i ~b:0
  done;
  W.corrupt_word t ~lane:0 ~slot:0 ~word:2 ~f:(fun b -> b + 1);
  Alcotest.check_raises "replay refuses interior damage"
    (Wal.Corrupted { lane = 0; slot = 0 })
    (fun () -> ignore (W.replay t))

let test_truncate () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module W = Wal.Make (M) in
  let t = W.create ~lanes:2 ~lane_capacity:4 () in
  for i = 1 to 4 do
    W.append t ~lane:(i mod 2) ~kind:1 ~a:i ~b:0
  done;
  W.truncate t;
  (match W.verify t with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "truncated log verifies to %d records" n
  | Error e -> Alcotest.failf "truncated log fails verify: %s" e);
  (match W.replay t with
  | [], 0 -> ()
  | records, torn ->
      Alcotest.failf "truncated log replays %d record(s), %d torn"
        (List.length records) torn);
  (* and the log is usable again *)
  W.append t ~lane:0 ~kind:2 ~a:5 ~b:0;
  Alcotest.(check int) "appended after truncate" 1 (W.appended t)

let test_checksum_slot_bound () =
  (* a record valid at slot s must not classify as valid at slot s' *)
  let sum = Wal.Codec.checksum ~slot:3 ~kind:1 ~a:10 ~b:20 in
  (match Wal.Codec.classify ~slot:3 ~kind:1 ~a:10 ~b:20 ~sum with
  | Wal.Codec.Valid _ -> ()
  | _ -> Alcotest.fail "record invalid at its own slot");
  match Wal.Codec.classify ~slot:4 ~kind:1 ~a:10 ~b:20 ~sum with
  | Wal.Codec.Valid _ -> Alcotest.fail "record validated at the wrong slot"
  | _ -> ()

(* ---------------------------- properties ------------------------------ *)

let lanes = 3
let cap = 12

(* Append per-lane programs (round-robin across lanes so appends
   interleave), then replay and compare lane by lane. *)
let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wal: append/replay round-trip"
    (arb_rcds lanes cap) (fun rss ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module W = Wal.Make (M) in
      let t = W.create ~lanes ~lane_capacity:cap () in
      let rec interleave queues =
        let progressed = ref false in
        let queues' =
          List.mapi
            (fun lane q ->
              match q with
              | [] -> []
              | r :: rest ->
                  W.append t ~lane ~kind:r.kind ~a:r.a ~b:r.b;
                  progressed := true;
                  rest)
            queues
        in
        if !progressed then interleave queues'
      in
      interleave rss;
      let records, torn = W.replay t in
      let by_lane lane =
        List.filter_map
          (fun r ->
            if r.Wal.r_lane = lane then Some (r.Wal.r_kind, r.r_a, r.r_b)
            else None)
          records
      in
      torn = 0
      && List.for_all
           (fun lane ->
             by_lane lane
             = List.map
                 (fun r -> (r.kind, r.a, r.b))
                 (List.nth rss lane))
           (List.init lanes Fun.id))

let prop_replay_idempotent =
  QCheck.Test.make ~count:100 ~name:"wal: replay is idempotent"
    (arb_rcds lanes cap) (fun rss ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module W = Wal.Make (M) in
      let t = W.create ~lanes ~lane_capacity:cap () in
      List.iteri
        (fun lane rs ->
          List.iter (fun r -> W.append t ~lane ~kind:r.kind ~a:r.a ~b:r.b) rs)
        rss;
      let r1 = W.replay t in
      let r2 = W.replay t in
      r1 = r2)

(* The deterministic single-bit-flip guarantee: flip any one bit of any
   stored word of any record and the log never silently replays the
   damaged record as valid — verify fails, and replay either drops it
   (tail) or refuses the lane (interior). *)
let prop_single_bit_flip_detected =
  QCheck.Test.make ~count:400 ~name:"wal: any single-bit flip is detected"
    QCheck.(
      quad
        (make
           ~print:(fun rs ->
             String.concat ","
               (List.map (fun r -> Printf.sprintf "%d/%d/%d" r.kind r.a r.b) rs))
           Gen.(list_size (int_range 1 8) gen_rcd))
        (int_range 0 1_000_000) (int_range 0 3) (int_range 0 62))
    (fun (rs, slot_pick, word, bit) ->
      let heap = Heap.create () in
      let (module M) = Sim.memory heap in
      let module W = Wal.Make (M) in
      let t = W.create ~lanes:1 ~lane_capacity:8 () in
      List.iter (fun r -> W.append t ~lane:0 ~kind:r.kind ~a:r.a ~b:r.b) rs;
      let n = List.length rs in
      let slot = slot_pick mod n in
      W.corrupt_word t ~lane:0 ~slot ~word ~f:(fun w -> w lxor (1 lsl bit));
      let verify_failed = Result.is_error (W.verify t) in
      let replay_safe =
        match W.replay t with
        | records, torn ->
            (* damaged slot must be gone, and only as a dropped tail *)
            torn >= 1
            && slot = n - 1
            && List.map (fun r -> r.Wal.r_a) records
               = List.map (fun r -> r.a)
                   (List.filteri (fun i _ -> i < n - 1) rs)
        | exception Wal.Corrupted { lane = 0; slot = s } -> s = slot
        | exception Wal.Corrupted _ -> false
      in
      verify_failed && replay_safe)

let suite =
  [
    Alcotest.test_case "round-trip basics" `Quick test_roundtrip_basic;
    Alcotest.test_case "lane overflow raises Full" `Quick test_full;
    Alcotest.test_case "torn tail detected and dropped" `Quick
      test_torn_tail_dropped;
    Alcotest.test_case "interior corruption refused" `Quick
      test_interior_corruption_refused;
    Alcotest.test_case "truncate leaves a clean empty log" `Quick
      test_truncate;
    Alcotest.test_case "checksum is slot-bound" `Quick
      test_checksum_slot_bound;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_roundtrip; prop_replay_idempotent; prop_single_bit_flip_detected ]
