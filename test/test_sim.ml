(** Tests for the effects-based scheduler: interleaving control,
    determinism, crash injection, and the exhaustive explorer. *)

open Helpers
module Machine = Dssq_sim.Machine

let with_mem () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  (heap, (module M : Dssq_memory.Memory_intf.S))

let test_direct_mode_outside_run () =
  let heap, (module M) = with_mem () in
  ignore heap;
  let c = M.alloc 1 in
  M.write c 2;
  Alcotest.(check int) "direct ops work outside run" 2 (M.read c)

let test_threads_complete () =
  let heap, (module M) = with_mem () in
  let cells = Array.init 3 (fun _ -> M.alloc 0) in
  let body i () = M.write cells.(i) (i + 1) in
  let outcome = Sim.run heap ~threads:[ body 0; body 1; body 2 ] in
  Alcotest.(check bool) "not crashed" false outcome.Sim.crashed;
  Array.iteri
    (fun i c -> Alcotest.(check int) "each thread ran" (i + 1) (M.read c))
    cells

let test_interleaving_lost_update () =
  (* Classic lost update: both threads read 0, then both write 1.  A
     schedule that runs threads to completion one-by-one yields 2. *)
  let run_with policy =
    let heap, (module M) = with_mem () in
    let c = M.alloc 0 in
    let body () =
      let v = M.read c in
      M.write c (v + 1)
    in
    ignore (Sim.run heap ~policy ~threads:[ body; body ]);
    M.read c
  in
  Alcotest.(check int) "round-robin interleaves reads first" 1
    (run_with Sim.Round_robin);
  Alcotest.(check int) "scripted serial execution" 2
    (run_with (Sim.Script [| 0; 0; 0; 1; 1; 1 |]))

let test_random_policy_deterministic () =
  let run seed =
    let heap, (module M) = with_mem () in
    let c = M.alloc 0 in
    let body k () =
      for _ = 1 to 5 do
        M.write c ((M.read c * 10) + k)
      done
    in
    ignore (Sim.run heap ~policy:(Sim.Random_seed seed) ~threads:[ body 1; body 2 ]);
    M.read c
  in
  Alcotest.(check int) "same seed, same schedule" (run 7) (run 7);
  (* Different seeds should (for this scenario) give a different trace. *)
  let distinct = List.sort_uniq compare (List.init 10 run) in
  Alcotest.(check bool) "schedules vary with seed" true (List.length distinct > 1)

let test_cas_through_sim () =
  let heap, (module M) = with_mem () in
  let c = M.alloc 0 in
  let winners = ref 0 in
  let body () = if M.cas c ~expected:0 ~desired:1 then incr winners in
  ignore (Sim.run heap ~threads:[ body; body; body ]);
  Alcotest.(check int) "exactly one cas wins" 1 !winners

let test_crash_at_step () =
  let heap, (module M) = with_mem () in
  let c = M.alloc 0 in
  let body () =
    M.write c 1;
    M.flush c;
    M.write c 2;
    M.flush c
  in
  (* Steps: 0:start->write pending... crash before the second flush. *)
  let outcome = Sim.run heap ~crash:(Sim.Crash_at_step 3) ~threads:[ body ] in
  Alcotest.(check bool) "crashed" true outcome.Sim.crashed;
  Sim.apply_crash heap ~evict_p:0.0 ~seed:1;
  Alcotest.(check int) "only first write persisted" 1 (M.read c)

let test_crash_kills_all_threads () =
  let heap, (module M) = with_mem () in
  let c = M.alloc 0 in
  let body () =
    for _ = 1 to 100 do
      M.write c (M.read c + 1)
    done
  in
  let outcome = Sim.run heap ~crash:(Sim.Crash_at_step 10) ~threads:[ body; body ] in
  Alcotest.(check bool) "crashed" true outcome.Sim.crashed;
  Array.iter
    (fun r -> Alcotest.(check bool) "thread killed" true (r = None))
    outcome.Sim.results

let test_thread_exception_reported () =
  let heap, (module M) = with_mem () in
  ignore (module M : Dssq_memory.Memory_intf.S);
  let body () = failwith "boom" in
  let outcome = Sim.run heap ~threads:[ body ] in
  match outcome.Sim.results.(0) with
  | Some (Error (Failure msg)) -> Alcotest.(check string) "exn" "boom" msg
  | _ -> Alcotest.fail "expected thread failure to be captured"

let test_max_steps_guard () =
  let heap, (module M) = with_mem () in
  let c = M.alloc 0 in
  let body () =
    while M.read c = 0 do
      ()
    done
  in
  Alcotest.check_raises "livelock detected"
    (Failure "Sim.run: exceeded max_steps=100 (livelock?)") (fun () ->
      ignore (Sim.run heap ~max_steps:100 ~threads:[ body ]))

let test_explore_counts_interleavings () =
  (* Two threads, one memory step each => exactly 2 schedules. *)
  let executions =
    (Explore.run
       (Explore.make
         ~setup:(fun () ->
           let heap, (module M) = with_mem () in
           let c = M.alloc 0 in
           ignore c;
           {
             Explore.ctx = ();
             heap;
             threads = [ (fun () -> M.write c 1); (fun () -> M.write c 2) ];
           })
          ~check:(fun () _ ~crashed:_ -> ())
          ()))
      .Explore.executions
  in
  (* Each thread takes 2 steps (start-run-to-first-op, then the op); the
     interleavings of 2x2 steps = C(4,2) = 6.  Both writes hit the same
     cell, so they conflict and sleep-set reduction prunes nothing. *)
  Alcotest.(check int) "interleaving count" 6 executions

let test_explore_finds_lost_update () =
  (* The explorer must visit at least one schedule where the increments
     collide and one where they do not. *)
  let outcomes = ref [] in
  ignore
    (Explore.run
       (Explore.make
          ~setup:(fun () ->
            let heap, (module M) = with_mem () in
            let c = M.alloc 0 in
            let body () = M.write c (M.read c + 1) in
            {
              Explore.ctx = (fun () -> M.read c);
              heap;
              threads = [ body; body ];
            })
          ~check:(fun get _heap ~crashed:_ -> outcomes := get () :: !outcomes)
          ()));
  let distinct = List.sort_uniq compare !outcomes in
  Alcotest.(check (list int)) "both final values observed" [ 1; 2 ] distinct

let test_explore_crashes_branch () =
  let crashes = ref 0 and completes = ref 0 in
  ignore
    (Explore.run
       (Explore.make ~crashes:true
          ~setup:(fun () ->
            let heap, (module M) = with_mem () in
            let c = M.alloc 0 in
            { Explore.ctx = (); heap; threads = [ (fun () -> M.write c 1) ] })
          ~check:(fun () _ ~crashed ->
            if crashed then incr crashes else incr completes)
          ()));
  Alcotest.(check bool) "some crashing branches" true (!crashes > 0);
  Alcotest.(check bool) "some complete branches" true (!completes > 0)

let suite =
  [
    Alcotest.test_case "direct mode outside run" `Quick
      test_direct_mode_outside_run;
    Alcotest.test_case "threads run to completion" `Quick test_threads_complete;
    Alcotest.test_case "interleaving produces lost update" `Quick
      test_interleaving_lost_update;
    Alcotest.test_case "random policy is deterministic per seed" `Quick
      test_random_policy_deterministic;
    Alcotest.test_case "cas atomicity across threads" `Quick
      test_cas_through_sim;
    Alcotest.test_case "crash at step loses unflushed state" `Quick
      test_crash_at_step;
    Alcotest.test_case "crash kills all threads" `Quick
      test_crash_kills_all_threads;
    Alcotest.test_case "thread exceptions are captured" `Quick
      test_thread_exception_reported;
    Alcotest.test_case "max_steps livelock guard" `Quick test_max_steps_guard;
    Alcotest.test_case "explore: interleaving count" `Quick
      test_explore_counts_interleavings;
    Alcotest.test_case "explore: finds lost update" `Quick
      test_explore_finds_lost_update;
    Alcotest.test_case "explore: crash branches" `Quick
      test_explore_crashes_branch;
  ]
