(** Tests for the event tracer: the no-op off state, ring-buffer bounds
    and drop-oldest eviction, heap/sim emission with crash verdicts, the
    Chrome trace-event exporter, the native Counted hook, and the
    trace-carrying lincheck counterexample. *)

module Trace = Dssq_obs.Trace
module Json = Dssq_obs.Json
module Heap = Dssq_pmem.Heap
module Sim = Dssq_sim.Sim
module Spec = Dssq_spec.Spec
module Specs = Dssq_spec.Specs
module Recorder = Dssq_history.Recorder
module Lincheck = Dssq_lincheck.Lincheck

let contains hay needle =
  let ln = String.length needle and lh = String.length hay in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let events t = List.map (fun (e : Trace.entry) -> e.Trace.event) (Trace.entries t)

let test_off_is_noop () =
  Trace.stop ();
  Alcotest.(check bool) "off" false (Trace.is_on ());
  Alcotest.(check bool) "no active tracer" true (Trace.active () = None);
  (* emitters are safe no-ops *)
  Trace.op_begin "op" ~args:"";
  Trace.mem `Read ~cell:0 ~name:"c" ~line:0 ~dirty:false;
  Trace.crash ~verdicts:[];
  Trace.recovery_begin ();
  Trace.resolve ~outcome:"nothing";
  Alcotest.(check bool) "still off" false (Trace.is_on ())

let test_ring_drop_oldest () =
  let t = Trace.start ~capacity:4 () in
  Trace.set_tid 0;
  for i = 1 to 10 do
    Trace.op_begin "op" ~args:(string_of_int i)
  done;
  Trace.stop ();
  Alcotest.(check int) "capacity bounds retention" 4
    (List.length (Trace.entries t));
  Alcotest.(check int) "recorded counts everything" 10 (Trace.recorded t);
  Alcotest.(check int) "dropped counts evictions" 6 (Trace.dropped t);
  let args =
    List.map
      (function Trace.Op_begin { args; _ } -> args | _ -> assert false)
      (events t)
  in
  Alcotest.(check (list string)) "the newest window is kept"
    [ "7"; "8"; "9"; "10" ] args

let test_per_thread_rings () =
  let t = Trace.start ~capacity:2 () in
  Trace.set_tid 0;
  Trace.op_begin "a" ~args:"";
  Trace.set_tid 1;
  for _ = 1 to 5 do
    Trace.op_begin "b" ~args:""
  done;
  Trace.stop ();
  (* thread 1 overflowed only its own ring; thread 0's entry survives *)
  Alcotest.(check int) "entries" 3 (List.length (Trace.entries t));
  Alcotest.(check int) "dropped" 3 (Trace.dropped t);
  Alcotest.(check bool) "t0 entry retained" true
    (List.exists (fun (e : Trace.entry) -> e.Trace.tid = 0) (Trace.entries t));
  (* the per-thread breakdown names the overflowing ring only, and its
     drops sum to the total *)
  Alcotest.(check (list (pair int int)))
    "dropped_by_thread blames only t1"
    [ (1, 3) ]
    (Trace.dropped_by_thread t);
  Alcotest.(check bool)
    "drops are mirrored into the metrics registry" true
    (match
       List.assoc_opt "trace.dropped_events" (Dssq_obs.Metrics.snapshot ())
     with
    | Some n -> n >= 3
    | None -> false)

let test_heap_emission_and_crash_verdicts () =
  let h = Heap.create () in
  let a = Heap.alloc h ~name:"a" 0 in
  let b = Heap.alloc h ~name:"b" 0 in
  let t = Trace.start () in
  Heap.write h a 1;
  Heap.flush h a;
  Heap.write h b 2 (* left dirty *);
  ignore (Heap.read h a);
  ignore (Heap.cas h a ~expected:1 ~desired:3) (* a dirty again *);
  Heap.fence h;
  Heap.crash h ~evict:(fun () -> true);
  Trace.stop ();
  let es = events t in
  (match
     List.find_map
       (function Trace.Crash { verdicts } -> Some verdicts | _ -> None)
       es
   with
  | None -> Alcotest.fail "no crash event"
  | Some vs ->
      Alcotest.(check int) "both dirty cells have verdicts" 2 (List.length vs);
      Alcotest.(check bool) "all evicted under evict=true" true
        (List.for_all (fun (_, _, evicted) -> evicted) vs));
  Alcotest.(check bool) "flush records post-event cleanliness" true
    (List.exists
       (function
         | Trace.Mem { op = `Flush; cell_name = "a"; dirty = false; _ } -> true
         | _ -> false)
       es);
  Alcotest.(check bool) "write records post-event dirtiness" true
    (List.exists
       (function
         | Trace.Mem { op = `Write; cell_name = "b"; dirty = true; _ } -> true
         | _ -> false)
       es);
  Alcotest.(check bool) "fence recorded" true
    (List.exists
       (function Trace.Mem { op = `Fence; _ } -> true | _ -> false)
       es)

(* The acceptance workload: a crash-injecting simulated run followed by
   recovery and resolve, traced end to end. *)
let run_crashy_workload () =
  let heap = Heap.create () in
  let (module M) = Sim.memory heap in
  let module Q = Dssq_core.Dss_queue.Make (M) in
  let q = Q.create ~nthreads:2 ~capacity:64 () in
  List.iter (fun v -> Q.enqueue q ~tid:0 v) [ 1; 2 ];
  let t = Trace.start () in
  Heap.fence heap;
  let enq () =
    Q.prep_enqueue q ~tid:0 7;
    Q.exec_enqueue q ~tid:0
  in
  let deq () =
    Q.prep_dequeue q ~tid:1;
    ignore (Q.exec_dequeue q ~tid:1)
  in
  let outcome =
    Sim.run heap ~policy:(Sim.Random_seed 3) ~crash:(Sim.Crash_at_step 20)
      ~threads:[ enq; deq ]
  in
  Alcotest.(check bool) "the run crashed" true outcome.Sim.crashed;
  Sim.apply_crash heap ~evict_p:0.5 ~seed:3;
  Q.recover q;
  ignore (Q.resolve q ~tid:0);
  ignore (Q.resolve q ~tid:1);
  Trace.stop ();
  t

let test_workload_covers_every_kind () =
  let t = run_crashy_workload () in
  let es = events t in
  let has p = List.exists p es in
  Alcotest.(check bool) "op begin" true
    (has (function Trace.Op_begin _ -> true | _ -> false));
  Alcotest.(check bool) "op end" true
    (has (function Trace.Op_end _ -> true | _ -> false));
  Alcotest.(check bool) "read" true
    (has (function Trace.Mem { op = `Read; _ } -> true | _ -> false));
  Alcotest.(check bool) "write" true
    (has (function Trace.Mem { op = `Write; _ } -> true | _ -> false));
  Alcotest.(check bool) "flush" true
    (has (function Trace.Mem { op = `Flush; _ } -> true | _ -> false));
  Alcotest.(check bool) "fence" true
    (has (function Trace.Mem { op = `Fence; _ } -> true | _ -> false));
  Alcotest.(check bool) "crash" true
    (has (function Trace.Crash _ -> true | _ -> false));
  Alcotest.(check bool) "recovery begin/end" true
    (has (function Trace.Recovery_begin -> true | _ -> false)
    && has (function Trace.Recovery_end -> true | _ -> false));
  Alcotest.(check bool) "resolve" true
    (has (function Trace.Resolve _ -> true | _ -> false));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t)

let test_chrome_export_parses_back () =
  let t = run_crashy_workload () in
  let entries = Trace.entries t in
  let json = Trace.to_chrome_json entries in
  let reparsed = Json.of_string (Json.to_string json) in
  Alcotest.(check bool) "export round-trips through the parser" true
    (reparsed = json);
  let evs = Json.to_list (Json.path [ "traceEvents" ] reparsed) in
  (* metadata (process + 3 threads) + one record per entry *)
  Alcotest.(check int) "one record per entry plus metadata"
    (List.length entries + 4) (List.length evs);
  Alcotest.(check bool) "B/E and instant phases present" true
    (let phs = List.map (fun e -> Json.to_str (Json.member "ph" e)) evs in
     List.mem "B" phs && List.mem "E" phs && List.mem "i" phs);
  (* the Json satellite accessors work on the export *)
  let some_mem =
    List.find
      (fun e ->
        Json.member "cat" e = Json.String "mem"
        && Json.member "args" e <> Json.Null)
      evs
  in
  Alcotest.(check bool) "to_bool reads the dirty flag" true
    (match Json.path [ "args"; "dirty" ] some_mem with
    | Json.Bool _ as b -> Json.to_bool b || true
    | _ -> false)

let test_timeline_pp () =
  let t = run_crashy_workload () in
  let s = Format.asprintf "%a" Trace.pp_timeline (Trace.entries t) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "timeline mentions %S" needle) true
        (contains s needle))
    [ "CRASH"; "recovery begin"; "recovery end"; "resolve ->"; "flush"; "t0"; "t1"; "sys" ]

let test_native_counted_hook () =
  let module M = Dssq_memory.Native.Counted () in
  let c = M.alloc 0 in
  let t = Trace.start () in
  Trace.set_tid 0;
  M.write c 1;
  ignore (M.read c);
  ignore (M.cas c ~expected:1 ~desired:2);
  Trace.stop ();
  let mems =
    List.filter_map
      (function Trace.Mem { op; cell; _ } -> Some (op, cell) | _ -> None)
      (events t)
  in
  Alcotest.(check bool) "native ops traced (anonymous cells)" true
    (List.mem (`Write, -1) mems
    && List.mem (`Read, -1) mems
    && List.mem (`Cas, -1) mems);
  (* stop() must detach the hook: further ops emit nothing *)
  M.write c 3;
  Alcotest.(check int) "hook detached on stop" (List.length mems)
    (List.length
       (List.filter
          (function Trace.Mem _ -> true | _ -> false)
          (events t)))

let test_lincheck_counterexample_carries_trace () =
  (* A forced violation: a completed dequeue returned a value that was
     never enqueued. *)
  let spec = Specs.Queue.spec () in
  let make_history () =
    let rec_ = Recorder.create () in
    ignore
      (Recorder.record rec_ ~tid:0 Specs.Queue.Dequeue (fun () ->
           Specs.Queue.Value 5));
    Recorder.history rec_
  in
  (* Without a tracer the counterexample is bare. *)
  (match Lincheck.check spec (make_history ()) with
  | Lincheck.Not_linearizable [] -> ()
  | Lincheck.Not_linearizable _ -> Alcotest.fail "expected an empty trace"
  | Lincheck.Linearizable _ -> Alcotest.fail "expected a violation");
  (* Under a tracer the recorded events ride along and are printed. *)
  let t = Trace.start () in
  Trace.set_tid 0;
  Trace.op_begin "dequeue" ~args:"";
  Trace.mem `Read ~cell:3 ~name:"head" ~line:1 ~dirty:false;
  Trace.op_end "dequeue" ~result:"5";
  let verdict = Lincheck.check spec (make_history ()) in
  Trace.stop ();
  ignore t;
  match verdict with
  | Lincheck.Linearizable _ -> Alcotest.fail "expected a violation"
  | Lincheck.Not_linearizable trace ->
      Alcotest.(check int) "carries the recorded events" 3 (List.length trace);
      let s = Format.asprintf "%a" (Lincheck.pp_verdict spec.Spec.pp_op) verdict in
      Alcotest.(check bool) "verdict text" true (contains s "NOT linearizable");
      Alcotest.(check bool) "timeline printed with the verdict" true
        (contains s "begin dequeue" && contains s "read  head#3")

let suite =
  [
    Alcotest.test_case "tracing off is a no-op" `Quick test_off_is_noop;
    Alcotest.test_case "ring buffer drops oldest, counts drops" `Quick
      test_ring_drop_oldest;
    Alcotest.test_case "rings are per-thread" `Quick test_per_thread_rings;
    Alcotest.test_case "heap emission and crash verdicts" `Quick
      test_heap_emission_and_crash_verdicts;
    Alcotest.test_case "crash workload covers every event kind" `Quick
      test_workload_covers_every_kind;
    Alcotest.test_case "chrome export parses back" `Quick
      test_chrome_export_parses_back;
    Alcotest.test_case "timeline rendering" `Quick test_timeline_pp;
    Alcotest.test_case "native Counted hook" `Quick test_native_counted_hook;
    Alcotest.test_case "lincheck counterexample carries the trace" `Quick
      test_lincheck_counterexample_carries_trace;
  ]
